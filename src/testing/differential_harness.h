// Differential fuzzing harness: drives the whole detector stack in lockstep
// through one decoded op schedule and cross-checks every observable.
//
// Tracks under test, all fed the same logical stream:
//   * scalar   — QuantileFilter driven item-at-a-time (the sequential scalar
//                reference everything else must match bit-for-bit);
//   * batch    — an identically-constructed QuantileFilter driven through
//                InsertBatch with arbitrary split points (including empty
//                spans and spans shorter than the prefetch window);
//   * sharded  — a sequential ShardedQuantileFilter versus a second one fed
//                by IngestPipeline with randomized batch/ring geometry; the
//                pipeline run must be per-shard bit-identical (report-key
//                streams, aggregate stats, serialized shard state);
//   * oracles  — in exact-regime configs (integral Qweights, key universe
//                resident in the candidate part) an integer per-key reference
//                model and, for fixed-criteria configs, the zero-error
//                ExactDetector must agree with the scalar filter report for
//                report and query for query.
//
// Checked at flush barriers and randomized checkpoints: report streams
// (op index + key), the full Stats block, serialized state equality,
// restore round-trips, and the QFS2/key-mapping-scheme rejection property
// (a checkpoint stamped with the modulo-era scheme must NOT restore — if a
// future change reverts that guard, the harness fails on every checkpoint).
//
// Failures never assert: RunFuzzCase returns a FuzzResult naming the op
// index and mismatch, which qf_fuzz turns into a replay token and a
// delta-debugged minimal reproducer.

#ifndef QUANTILEFILTER_TESTING_DIFFERENTIAL_HARNESS_H_
#define QUANTILEFILTER_TESTING_DIFFERENTIAL_HARNESS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baseline/exact_detector.h"
#include "common/hash.h"
#include "common/random.h"
#include "core/quantile_filter.h"
#include "core/sharded_filter.h"
#include "durable/checkpoint.h"
#include "durable/log.h"
#include "durable/recovery.h"
#include "durable/storage.h"
#include "parallel/pipeline.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "stream/item.h"
#include "testing/op_stream.h"

namespace qf::testing {

/// Vague-part engine of the filters under test.
enum class SketchKind : uint8_t {
  kCountSketch32 = 0,
  kCountSketch16 = 1,
  kCountMin16 = 2,
};

/// Deliberate defects injected into one track to prove the harness catches
/// real bugs (and to give the minimizer something to shrink). kNone in
/// production fuzzing; the others are driven by tests and `qf_fuzz --fault=`.
enum class Fault : uint32_t {
  kNone = 0,
  /// The batch path silently drops the last buffered item of a flush.
  kDropBatchItem = 1,
  /// The batch path processes the first two split segments in swapped order.
  kReorderBatchSplits = 2,
  /// Simulates reverting the QFS2/key-mapping-scheme rejection: checkpoints
  /// are restored without the stale-scheme forgery, so the harness's
  /// "stale tag must be rejected" property observes an accepted restore.
  kNoTagReject = 3,
};
inline constexpr uint32_t kNumFaults = 4;

const char* FaultName(Fault fault);
bool ParseFault(std::string_view name, Fault* out);

/// One fuzzing configuration: filter geometry, election strategy, criteria
/// set and the value levels the schedule's value selectors map onto.
struct FuzzConfig {
  const char* name;
  SketchKind sketch;
  size_t memory_bytes;
  int num_shards;
  ElectionStrategy election;
  uint32_t key_universe;
  /// Integral Qweights + universe resident in the candidate part: the filter
  /// is semantically exact and must match the per-key oracles op for op.
  bool exact_regime;
  /// Additionally drive the zero-error ExactDetector (requires a single
  /// fixed criteria, where count-domain and weight-domain tests coincide).
  bool use_exact_detector;
  /// Merge ops build a compatible donor and MergeFrom it (approx configs
  /// only; the per-key oracles cannot mirror merge-without-report).
  bool allow_merge;
  std::vector<Criteria> criteria;    // [0] is the default criteria
  std::vector<double> value_levels;  // value_sel maps into this table
  /// Vague-part memory layout for every filter in the ensemble. Blocked is
  /// only effective for small signed integral CountSketch counters; other
  /// sketches silently run classic, so pair kBlocked with a kind that
  /// supports it.
  VagueLayout layout = VagueLayout::kClassic;
  /// Durable-replay track: every sharded-track insert is also appended to a
  /// MemStorage-backed WAL; at each sharded barrier the harness "crashes"
  /// (recovers checkpoint + log tail into a fresh sharded filter) and the
  /// recovered state must match the sequential sharded track bit-for-bit.
  /// A second recovery from a torn copy of the storage checks the
  /// truncated-tail path replays exactly a prefix. rng-chosen full/delta
  /// checkpoints and retention run between barriers.
  bool durable_replay = false;
};

/// The built-in configuration matrix (seed % size selects one per run).
const std::vector<FuzzConfig>& FuzzConfigs();

struct FuzzResult {
  bool failed = false;
  size_t failing_op = 0;  // index into the op vector
  std::string message;
};

/// Runs the full differential ensemble. `harness_seed` fixes every auxiliary
/// random choice (batch split points, donor streams, pipeline geometry), so
/// a (config, fault, harness_seed, ops) tuple replays bit-identically.
FuzzResult RunFuzzCase(const FuzzConfig& config, Fault fault,
                       uint64_t harness_seed, const std::vector<Op>& ops);

namespace internal {

/// Integer per-key reference model (generalizes the one in
/// tests/differential_test.cc to per-insert criteria). Valid only when every
/// criteria in play has an integral positive weight.
class ReferenceModel {
 public:
  bool Insert(uint64_t key, double value, const Criteria& c) {
    int64_t& qw = qweights_[key];
    qw += c.ValueIsAbnormal(value) ? c.positive_floor() : -1;
    if (qw >= c.report_threshold()) {
      qw = 0;
      return true;
    }
    return false;
  }

  int64_t Query(uint64_t key) const {
    auto it = qweights_.find(key);
    return it == qweights_.end() ? 0 : it->second;
  }

  void Delete(uint64_t key) { qweights_.erase(key); }
  void Reset() { qweights_.clear(); }

 private:
  std::unordered_map<uint64_t, int64_t> qweights_;
};

template <typename SketchT>
class DifferentialHarness {
 public:
  using Filter = QuantileFilter<SketchT>;
  using Sharded = ShardedQuantileFilter<SketchT>;
  using Pipeline = IngestPipeline<SketchT>;

  DifferentialHarness(const FuzzConfig& config, Fault fault,
                      uint64_t harness_seed)
      : config_(config),
        fault_(fault),
        rng_(Mix64(harness_seed ^ 0xD1FF0F5EULL)),
        scalar_(MakeOptions(config), config.criteria[0]),
        batch_(MakeOptions(config), config.criteria[0]),
        sharded_seq_(MakeOptions(config), config.criteria[0],
                     config.num_shards),
        sharded_pipe_(MakeOptions(config), config.criteria[0],
                      config.num_shards) {
    if (config.use_exact_detector) exact_.emplace(config.criteria[0]);
    if (config.durable_replay) {
      wal_storage_.emplace();
      durable::WalOptions wopts;
      wopts.segment_bytes = 1024;  // tiny: rotation runs on every schedule
      wopts.fsync = durable::FsyncMode::kNone;
      wal_.emplace(&*wal_storage_, wopts);
      wal_->Init(1, 1);
      ckpts_.emplace(&*wal_storage_);
      durable_counts_.assign(static_cast<size_t>(config.num_shards), 0);
      durable_baseline_ = durable_counts_;
    }
  }

  FuzzResult Run(const std::vector<Op>& ops) {
    result_ = FuzzResult{};
    if (config_.exact_regime && !ExactRegimeResident()) {
      Fail(0,
           "config error: exact-regime key universe does not fit the "
           "candidate part collision-free");
      return result_;
    }
    for (size_t i = 0; i < ops.size() && !result_.failed; ++i) {
      Apply(i, ops[i]);
    }
    if (!result_.failed) {
      // Final barrier: even a schedule with no explicit checkpoint op ends
      // with the full comparison, so minimal reproducers stay minimal.
      const size_t end = ops.size();
      FlushBatch(end);
      CheckReports(end);
      CheckStats(end);
      CheckSerializedState(end);
      DrainAndCompareSharded(end);
    }
    return result_;
  }

 private:
  struct Report {
    size_t op;
    uint64_t key;

    friend bool operator==(const Report& a, const Report& b) {
      return a.op == b.op && a.key == b.key;
    }
  };

  static typename Filter::Options MakeOptions(const FuzzConfig& c) {
    typename Filter::Options o;
    o.memory_bytes = c.memory_bytes;
    o.election = c.election;
    o.vague_layout = c.layout;
    return o;
  }

  uint64_t KeyFor(uint16_t raw) const {
    return 1 + (raw % config_.key_universe);
  }
  double ValueFor(uint8_t sel) const {
    return config_.value_levels[sel % config_.value_levels.size()];
  }
  const Criteria& Current() const { return config_.criteria[criteria_idx_]; }

  /// True iff every key of the universe can live in the candidate part at
  /// once (no bucket holds more keys than it has entries) — the structural
  /// precondition for exact-regime oracle equality. Deterministic per
  /// config: bucket placement depends only on the filter seed.
  bool ExactRegimeResident() const {
    const CandidatePart& part = scalar_.candidate_part();
    std::unordered_map<uint32_t, int> load;
    for (uint64_t key = 1; key <= config_.key_universe; ++key) {
      if (++load[part.BucketOf(key)] > part.bucket_entries()) return false;
    }
    return true;
  }

  void Apply(size_t i, const Op& op) {
    switch (op.kind) {
      case OpKind::kInsert:
        DoInsert(i, op);
        break;
      case OpKind::kFlush:
        FlushBatch(i);
        CheckReports(i);
        break;
      case OpKind::kQuery:
        DoQuery(i, op);
        break;
      case OpKind::kDelete:
        DoDelete(i, op);
        break;
      case OpKind::kCriteriaChange:
        FlushBatch(i);
        CheckReports(i);
        criteria_idx_ = op.aux % config_.criteria.size();
        break;
      case OpKind::kMerge:
        DoMerge(i, op);
        break;
      case OpKind::kReset:
        DoReset(i);
        break;
      case OpKind::kCheckpoint:
        DoCheckpoint(i, op);
        break;
    }
  }

  void DoInsert(size_t i, const Op& op) {
    const uint64_t key = KeyFor(op.key);
    const double value = ValueFor(op.value_sel);
    const Criteria& c = Current();
    const bool reported = scalar_.Insert(key, value, c);
    if (reported) scalar_reports_.push_back({i, key});
    buffer_.push_back(Item{key, value});
    buffer_ops_.push_back(i);
    if (config_.exact_regime) {
      if (model_.Insert(key, value, c) != reported) {
        Fail(i, Describe("scalar filter vs integer reference model report "
                         "mismatch on insert",
                         key));
        return;
      }
      if (exact_ && exact_->Insert(key, value, c) != reported) {
        Fail(i, Describe("scalar filter vs ExactDetector report mismatch on "
                         "insert",
                         key));
        return;
      }
    }
    // The sharded tracks replay the default-criteria view of the stream at
    // the next full checkpoint (both lazily, so they stay aligned).
    sharded_pending_.push_back(Item{key, value});
    if (config_.durable_replay) {
      // Log-before-apply, exactly like the serving layer: the WAL sees the
      // item before any filter does, so a "crash" at a barrier can always
      // rebuild the sequential track from checkpoint + tail.
      const Item logged{key, value};
      if (!wal_->Append(std::span<const Item>(&logged, 1), nullptr)) {
        Fail(i, "durable-replay WAL append failed");
      }
    }
  }

  /// Drains the batch buffer through InsertBatch with arbitrary split
  /// points: segment lengths span [1, 2*kBatchWindow] so calls cover empty,
  /// sub-window, exact-window and multi-window spans.
  void FlushBatch(size_t /*i*/) {
    if (buffer_.empty()) return;
    if (fault_ == Fault::kDropBatchItem) {
      buffer_.pop_back();
      buffer_ops_.pop_back();
      if (buffer_.empty()) return;
    }
    std::vector<std::pair<size_t, size_t>> segments;  // (begin, length)
    for (size_t pos = 0; pos < buffer_.size();) {
      const uint64_t cap = std::min<uint64_t>(buffer_.size() - pos,
                                              2 * Filter::kBatchWindow);
      const size_t len = static_cast<size_t>(1 + rng_.NextBounded(cap));
      segments.emplace_back(pos, len);
      pos += len;
    }
    if (fault_ == Fault::kReorderBatchSplits && segments.size() >= 2) {
      std::swap(segments[0], segments[1]);
    }
    for (const auto& [begin, len] : segments) {
      const std::span<const Item> span(buffer_.data() + begin, len);
      batch_.InsertBatch(span, Current(),
                         [this, begin](size_t idx, const Item& item) {
                           batch_reports_.push_back(
                               {buffer_ops_[begin + idx], item.key});
                         });
      if ((rng_.Next() & 7u) == 0) {
        // Interleave empty-span calls: they must be observable no-ops.
        batch_.InsertBatch(std::span<const Item>{}, Current());
      }
    }
    buffer_.clear();
    buffer_ops_.clear();
  }

  void DoQuery(size_t i, const Op& op) {
    FlushBatch(i);
    CheckReports(i);
    if (result_.failed) return;
    const uint64_t key = KeyFor(op.key);
    const int64_t qs = scalar_.QueryQweight(key);
    const int64_t qb = batch_.QueryQweight(key);
    if (qs != qb) {
      Fail(i, Describe("QueryQweight mismatch between scalar and batch-driven "
                       "filters",
                       key, qs, qb));
      return;
    }
    if (config_.exact_regime) {
      if (const int64_t qm = model_.Query(key); qm != qs) {
        Fail(i, Describe("QueryQweight mismatch between scalar filter and "
                         "integer reference model",
                         key, qs, qm));
        return;
      }
      // The detector accumulates delta/(1-delta) in doubles, so its Qweight
      // sits within an ulp-scale epsilon of the filter's integer arithmetic;
      // rounding to the nearest integer recovers the exact value.
      if (exact_ && std::llround(exact_->Qweight(key)) != qs) {
        Fail(i, Describe("QueryQweight mismatch between scalar filter and "
                         "ExactDetector",
                         key, qs, std::llround(exact_->Qweight(key))));
      }
    }
  }

  void DoDelete(size_t i, const Op& op) {
    FlushBatch(i);
    CheckReports(i);
    if (result_.failed) return;
    const uint64_t key = KeyFor(op.key);
    scalar_.Delete(key);
    batch_.Delete(key);
    if (config_.exact_regime) {
      model_.Delete(key);
      if (exact_) exact_->Delete(key);
    }
    // The sharded tracks deliberately see an insert-only stream; delete
    // coverage lives on the scalar/batch/oracle tracks.
  }

  void DoMerge(size_t i, const Op& op) {
    if (!config_.allow_merge) return;  // oracles cannot mirror merges
    FlushBatch(i);
    CheckReports(i);
    if (result_.failed) return;
    Filter donor(MakeOptions(config_), config_.criteria[0]);
    const int items = 1 + static_cast<int>(op.aux % 12);
    for (int k = 0; k < items; ++k) {
      donor.Insert(1 + rng_.NextBounded(config_.key_universe),
                   ValueFor(static_cast<uint8_t>(rng_.Next() & 0xFF)));
    }
    const bool scalar_ok = scalar_.MergeFrom(donor);
    const bool batch_ok = batch_.MergeFrom(donor);
    if (!scalar_ok || !batch_ok) {
      Fail(i, "MergeFrom of a structurally compatible donor was rejected");
    }
  }

  void DoReset(size_t i) {
    FlushBatch(i);
    CheckReports(i);
    if (result_.failed) return;
    scalar_.Reset();
    batch_.Reset();
    if (config_.exact_regime) {
      model_.Reset();
      if (exact_) exact_->Reset();
    }
    // Both sharded filters are aligned (last drained at the same barrier);
    // dropping the pending slice keeps them aligned without a drain.
    sharded_pending_.clear();
    sharded_seq_.Reset();
    sharded_pipe_.Reset();
    if (config_.durable_replay) {
      // Mirrors CONTROL kRestore: the old log describes a filter that no
      // longer exists, so the generation bumps and history is dropped. The
      // anchor full checkpoint is not optional — Reset() clears counters but
      // leaves each shard's probabilistic-rounding generator evolved, so
      // replay-from-empty with freshly seeded generators could never be
      // bit-identical. The anchor pins the post-reset state, RNG included.
      if (!wal_->ResetTimeline(wal_->wal_gen() + 1)) {
        Fail(i, "durable-replay WAL ResetTimeline failed");
        return;
      }
      ckpts_->RemoveAll();
      std::fill(durable_counts_.begin(), durable_counts_.end(), 0);
      durable_baseline_ = durable_counts_;
      const uint64_t id = durable_next_id_++;
      std::vector<durable::RngState> rng(
          static_cast<size_t>(config_.num_shards));
      for (int s = 0; s < config_.num_shards; ++s) {
        sharded_seq_.shard(s).GetRngState(rng[static_cast<size_t>(s)].data());
      }
      if (!ckpts_->WriteFull(id, wal_->wal_gen(), 0,
                             sharded_seq_.SerializeState(), rng)) {
        Fail(i, "durable-replay anchor checkpoint write failed");
        return;
      }
      durable_base_id_ = id;
      durable_last_id_ = id;
    }
  }

  /// aux picks the checkpoint depth: every checkpoint compares reports and
  /// stats; every 4th adds serialized-state checks; every 8th drains the
  /// sharded/pipeline tracks (thread spawns, so rarer).
  void DoCheckpoint(size_t i, const Op& op) {
    FlushBatch(i);
    CheckReports(i);
    CheckStats(i);
    if (result_.failed) return;
    if ((op.aux & 3u) == 0) CheckSerializedState(i);
    if (result_.failed) return;
    if ((op.aux & 7u) == 0) DrainAndCompareSharded(i);
  }

  void CheckReports(size_t i) {
    if (result_.failed || scalar_reports_ == batch_reports_) return;
    size_t d = 0;
    while (d < scalar_reports_.size() && d < batch_reports_.size() &&
           scalar_reports_[d] == batch_reports_[d]) {
      ++d;
    }
    std::ostringstream msg;
    msg << "report streams diverge at report #" << d << ": scalar has ";
    if (d < scalar_reports_.size()) {
      msg << "(op " << scalar_reports_[d].op << ", key "
          << scalar_reports_[d].key << ")";
    } else {
      msg << "nothing";
    }
    msg << ", batch has ";
    if (d < batch_reports_.size()) {
      msg << "(op " << batch_reports_[d].op << ", key "
          << batch_reports_[d].key << ")";
    } else {
      msg << "nothing";
    }
    Fail(i, msg.str());
  }

  void CheckStats(size_t i) {
    if (result_.failed) return;
    const auto& a = scalar_.stats();
    const auto& b = batch_.stats();
    const auto diff = [&](const char* field, uint64_t x,
                          uint64_t y) -> bool {
      if (x == y) return false;
      std::ostringstream msg;
      msg << "stats." << field << " diverged: scalar " << x << " vs batch "
          << y;
      Fail(i, msg.str());
      return true;
    };
    if (diff("items", a.items, b.items)) return;
    if (diff("reports", a.reports, b.reports)) return;
    if (diff("candidate_hits", a.candidate_hits, b.candidate_hits)) return;
    if (diff("admissions", a.admissions, b.admissions)) return;
    if (diff("vague_inserts", a.vague_inserts, b.vague_inserts)) return;
    diff("swaps", a.swaps, b.swaps);
  }

  void CheckSerializedState(size_t i) {
    if (result_.failed) return;
    const std::vector<uint8_t> a = scalar_.SerializeState();
    const std::vector<uint8_t> b = batch_.SerializeState();
    if (a != b) {
      Fail(i, "serialized state of scalar- and batch-driven filters diverged");
      return;
    }
    Filter restored(MakeOptions(config_), config_.criteria[0]);
    if (!restored.RestoreState(a)) {
      Fail(i, "RestoreState rejected a checkpoint it just produced");
      return;
    }
    if (restored.SerializeState() != a) {
      Fail(i, "serialize -> restore -> serialize is not a fixed point");
      return;
    }
    // Stale key-mapping-scheme rejection (the PR 1 regression): a checkpoint
    // stamped with the modulo-era scheme must not restore. Under
    // Fault::kNoTagReject the forgery is skipped, which simulates the guard
    // being reverted — the property check below must then fire.
    std::vector<uint8_t> forged = a;
    if (fault_ != Fault::kNoTagReject) {
      const uint32_t stale = kKeyMappingScheme - 1;
      std::memcpy(forged.data() + sizeof(uint32_t), &stale, sizeof(stale));
    }
    if (restored.RestoreState(forged)) {
      Fail(i,
           "checkpoint with a stale key-mapping scheme tag was accepted by "
           "RestoreState");
    }
  }

  /// Replays the pending default-criteria insert slice into both sharded
  /// tracks — sequentially into one, through a fresh IngestPipeline with
  /// randomized geometry into the other — and requires bit-identical
  /// per-shard report streams, stats and serialized state.
  void DrainAndCompareSharded(size_t i) {
    if (result_.failed) return;
    const size_t shards = static_cast<size_t>(config_.num_shards);
    std::vector<std::vector<uint64_t>> seq_keys(shards);
    uint64_t seq_reports = 0;
    for (const Item& item : sharded_pending_) {
      const int s = sharded_seq_.ShardFor(item.key);
      if (config_.durable_replay) {
        ++durable_counts_[static_cast<size_t>(s)];
      }
      if (sharded_seq_.Insert(item.key, item.value)) {
        seq_keys[static_cast<size_t>(s)].push_back(item.key);
        ++seq_reports;
      }
    }

    typename Pipeline::Options popts;
    popts.batch_size = 1 + rng_.NextBounded(Pipeline::kMaxBatch);
    popts.ring_batches = 2 + rng_.NextBounded(14);  // tiny rings: wrap + stall
    popts.collect_reported_keys = true;
    Pipeline pipeline(sharded_pipe_, popts);
    const uint64_t pipe_reports = pipeline.RunTrace(sharded_pending_);
    const typename Pipeline::Totals totals = pipeline.totals();

    if (totals.items_dispatched != sharded_pending_.size() ||
        totals.items_processed != sharded_pending_.size()) {
      std::ostringstream msg;
      msg << "pipeline lost items: dispatched " << totals.items_dispatched
          << ", processed " << totals.items_processed << ", expected "
          << sharded_pending_.size();
      Fail(i, msg.str());
      return;
    }
    if (pipe_reports != seq_reports) {
      std::ostringstream msg;
      msg << "pipeline reports (" << pipe_reports
          << ") != sequential sharded reports (" << seq_reports << ")";
      Fail(i, msg.str());
      return;
    }
    for (size_t s = 0; s < shards; ++s) {
      if (pipeline.reported_keys(static_cast<int>(s)) != seq_keys[s]) {
        std::ostringstream msg;
        msg << "shard " << s << " report-key stream mismatch between "
            << "pipeline and sequential sharded runs";
        Fail(i, msg.str());
        return;
      }
      if (sharded_seq_.shard(static_cast<int>(s)).SerializeState() !=
          sharded_pipe_.shard(static_cast<int>(s)).SerializeState()) {
        std::ostringstream msg;
        msg << "shard " << s << " serialized state mismatch between pipeline "
            << "and sequential sharded runs";
        Fail(i, msg.str());
        return;
      }
    }
    const auto sa = sharded_seq_.AggregateStats();
    const auto sb = sharded_pipe_.AggregateStats();
    if (sa.items != sb.items || sa.reports != sb.reports ||
        sa.candidate_hits != sb.candidate_hits ||
        sa.admissions != sb.admissions ||
        sa.vague_inserts != sb.vague_inserts || sa.swaps != sb.swaps) {
      Fail(i, "aggregate stats mismatch between pipeline and sequential "
              "sharded runs");
      return;
    }

    // Sharded checkpoint properties: round-trip plus header forgeries.
    const std::vector<uint8_t> state = sharded_pipe_.SerializeState();
    Sharded restored(MakeOptions(config_), config_.criteria[0],
                     config_.num_shards);
    if (!restored.RestoreState(state)) {
      Fail(i, "sharded RestoreState rejected a checkpoint it just produced");
      return;
    }
    std::vector<uint8_t> forged = state;
    if (fault_ != Fault::kNoTagReject) {
      const uint32_t stale = kKeyMappingScheme - 1;
      std::memcpy(forged.data() + sizeof(uint32_t), &stale, sizeof(stale));
    }
    if (restored.RestoreState(forged)) {
      Fail(i,
           "sharded checkpoint with a stale key-mapping scheme tag was "
           "accepted by RestoreState");
      return;
    }
    std::vector<uint8_t> wrong_shards = state;
    const uint32_t bad_count = static_cast<uint32_t>(config_.num_shards) + 1;
    std::memcpy(wrong_shards.data() + 2 * sizeof(uint32_t), &bad_count,
                sizeof(bad_count));
    if (restored.RestoreState(wrong_shards)) {
      Fail(i,
           "sharded checkpoint with a mismatched shard count was accepted by "
           "RestoreState");
      return;
    }
    if (config_.durable_replay) CheckDurableReplay(i);
    sharded_pending_.clear();
  }

  /// The durable-replay track's crash point: maybe write a (full or delta)
  /// durable checkpoint of the sequential sharded filter, then recover from
  /// storage as a cold boot would — checkpoint chain + WAL tail — into a
  /// fresh sharded filter, and require per-shard bit-identity with the
  /// filter that never crashed. A second recovery runs against a copy of
  /// the storage with the last segment torn mid-byte, and must come back
  /// with exactly a prefix of the clean tail.
  void CheckDurableReplay(size_t i) {
    if (result_.failed) return;
    const uint32_t r = static_cast<uint32_t>(rng_.Next());
    if ((r & 1u) != 0) {
      const uint64_t covered = wal_->next_seq() - 1;
      const uint64_t id = durable_next_id_++;
      const bool full = durable_base_id_ == 0 || (r & 6u) == 0;
      bool wrote;
      if (full) {
        std::vector<durable::RngState> rng(
            static_cast<size_t>(config_.num_shards));
        for (int s = 0; s < config_.num_shards; ++s) {
          sharded_seq_.shard(s).GetRngState(rng[static_cast<size_t>(s)].data());
        }
        wrote = ckpts_->WriteFull(id, wal_->wal_gen(), covered,
                                  sharded_seq_.SerializeState(), rng);
      } else {
        std::vector<durable::ShardDelta> dirty;
        for (int s = 0; s < config_.num_shards; ++s) {
          if (durable_counts_[static_cast<size_t>(s)] !=
              durable_baseline_[static_cast<size_t>(s)]) {
            durable::ShardDelta d;
            d.shard = static_cast<uint32_t>(s);
            sharded_seq_.shard(s).GetRngState(d.rng.data());
            d.bytes = sharded_seq_.shard(s).SerializeState();
            dirty.push_back(std::move(d));
          }
        }
        wrote = ckpts_->WriteDelta(id, durable_last_id_, wal_->wal_gen(),
                                   covered,
                                   static_cast<uint32_t>(config_.num_shards),
                                   dirty);
      }
      if (!wrote) {
        Fail(i, "durable-replay checkpoint write failed");
        return;
      }
      if (full) durable_base_id_ = id;
      durable_last_id_ = id;
      durable_baseline_ = durable_counts_;
      wal_->Retain(covered);
      ckpts_->Retain(durable_base_id_);
    }

    durable::Recovered rec = durable::Recover(*wal_storage_, {});
    if (!rec.ok) {
      Fail(i, "durable-replay recovery failed: " + rec.error);
      return;
    }
    Sharded recovered(MakeOptions(config_), config_.criteria[0],
                      config_.num_shards);
    std::string err;
    if (!durable::ApplyCheckpoints(rec, &recovered, &err)) {
      Fail(i, "durable-replay checkpoint restore failed: " + err);
      return;
    }
    for (const Item& item : rec.tail) recovered.Insert(item.key, item.value);
    for (int s = 0; s < config_.num_shards; ++s) {
      if (recovered.shard(s).SerializeState() !=
          sharded_seq_.shard(s).SerializeState()) {
        std::ostringstream msg;
        msg << "durable-replay shard " << s << " state diverged after "
            << "checkpoint + tail recovery (" << rec.tail_records
            << " tail records)";
        Fail(i, msg.str());
        return;
      }
    }

    // Torn-tail crash: shear the newest segment mid-frame and recover
    // read-only. The result must be the clean tail minus a suffix — never a
    // failure, never extra or reordered items.
    durable::MemStorage torn;
    std::string last_segment;
    for (const auto& [name, bytes] : wal_storage_->blobs()) {
      torn.blobs()[name] = bytes;
      uint64_t first_seq;
      if (durable::ParseSegmentName(name, &first_seq)) last_segment = name;
    }
    if (!last_segment.empty()) {
      std::vector<uint8_t>& seg = torn.blobs()[last_segment];
      if (!seg.empty()) {
        seg.resize(seg.size() - 1 - rng_.NextBounded(seg.size()));
      }
    }
    durable::Recovered trec = durable::Recover(torn, {});
    if (!trec.ok) {
      Fail(i, "durable-replay torn-tail recovery failed closed: " +
                  trec.error);
      return;
    }
    if (trec.tail.size() > rec.tail.size() ||
        !std::equal(trec.tail.begin(), trec.tail.end(), rec.tail.begin(),
                    [](const Item& a, const Item& b) {
                      return a.key == b.key && a.value == b.value;
                    })) {
      Fail(i,
           "durable-replay torn-tail recovery is not a prefix of the clean "
           "tail");
    }
  }

  static std::string Describe(const char* what, uint64_t key) {
    std::ostringstream msg;
    msg << what << " (key " << key << ")";
    return msg.str();
  }
  static std::string Describe(const char* what, uint64_t key, int64_t lhs,
                              int64_t rhs) {
    std::ostringstream msg;
    msg << what << " (key " << key << ": " << lhs << " vs " << rhs << ")";
    return msg.str();
  }

  void Fail(size_t op, std::string message) {
    if (result_.failed) return;
    result_.failed = true;
    result_.failing_op = op;
    result_.message = std::move(message);
  }

  const FuzzConfig& config_;
  const Fault fault_;
  Rng rng_;  // harness-level randomness: splits, donors, pipeline geometry

  Filter scalar_;
  Filter batch_;
  std::vector<Item> buffer_;       // batch track: items awaiting InsertBatch
  std::vector<size_t> buffer_ops_; // originating op index per buffered item
  std::vector<Report> scalar_reports_;
  std::vector<Report> batch_reports_;

  Sharded sharded_seq_;
  Sharded sharded_pipe_;
  std::vector<Item> sharded_pending_;

  ReferenceModel model_;
  std::optional<ExactDetector> exact_;

  // Durable-replay track (config_.durable_replay only).
  std::optional<durable::MemStorage> wal_storage_;
  std::optional<durable::WalWriter> wal_;
  std::optional<durable::CheckpointStore> ckpts_;
  std::vector<uint64_t> durable_counts_;    // items fed per shard (seq track)
  std::vector<uint64_t> durable_baseline_;  // counts at the last checkpoint
  uint64_t durable_next_id_ = 1;
  uint64_t durable_last_id_ = 0;
  uint64_t durable_base_id_ = 0;

  size_t criteria_idx_ = 0;
  FuzzResult result_;
};

}  // namespace internal
}  // namespace qf::testing

#endif  // QUANTILEFILTER_TESTING_DIFFERENTIAL_HARNESS_H_
