// Operation-stream model for the differential fuzzing harness.
//
// A fuzz case is a flat byte string decoded into a sequence of detector
// operations (insert / flush-with-splits / query / delete / criteria change /
// merge / reset / checkpoint). The decoder is total: EVERY byte string decodes
// to a valid op sequence, which lets one decoder serve both front ends:
//
//   * seeded mode  — GenerateOpBytes(seed, n) emits n*kOpWireBytes uniform
//     PRNG bytes; DecodeOps turns them into ops. A (seed, n) pair therefore
//     fully determines the schedule, and ScheduleHash over the bytes is the
//     integrity stamp carried in replay tokens.
//   * libFuzzer    — LLVMFuzzerTestOneInput hands its raw input to the same
//     DecodeOps, so corpus entries and seeded replays share one format.
//
// Op kinds are drawn from a fixed 256-way selector table (weights chosen so
// insert dominates, structural ops are rare), so the *distribution* of ops is
// a property of the decoder, not of the generator.

#ifndef QUANTILEFILTER_TESTING_OP_STREAM_H_
#define QUANTILEFILTER_TESTING_OP_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qf::testing {

enum class OpKind : uint8_t {
  kInsert = 0,          // insert (key, value) under the current criteria
  kFlush,               // drain the batch buffer through InsertBatch splits
  kQuery,               // compare QueryQweight across all tracks
  kDelete,              // delete a key on every track that supports it
  kCriteriaChange,      // switch the current criteria index (flushes first)
  kMerge,               // MergeFrom a freshly built compatible donor filter
  kReset,               // reset all tracks
  kCheckpoint,          // compare reports/stats/serialized state; aux = depth
};
inline constexpr int kNumOpKinds = 8;

const char* OpKindName(OpKind kind);
bool ParseOpKind(const std::string& name, OpKind* out);

struct Op {
  OpKind kind = OpKind::kInsert;
  uint16_t key = 0;      // reduced into the config's key universe at run time
  uint8_t value_sel = 0; // selects a value level from the config's table
  uint8_t aux = 0;       // splits / criteria index / checkpoint depth

  friend bool operator==(const Op& a, const Op& b) {
    return a.kind == b.kind && a.key == b.key && a.value_sel == b.value_sel &&
           a.aux == b.aux;
  }
};

/// Bytes per op on the wire: [kind selector, key lo, key hi, value_sel, aux].
inline constexpr size_t kOpWireBytes = 5;

/// Decodes a byte string into ops (any trailing partial record is dropped).
/// Total: never fails, any input is a valid schedule.
std::vector<Op> DecodeOps(const uint8_t* data, size_t size);
std::vector<Op> DecodeOps(const std::vector<uint8_t>& bytes);

/// Re-encodes ops using one canonical selector per kind. Decoding the result
/// yields the same op sequence (DecodeOps(EncodeOps(ops)) == ops).
std::vector<uint8_t> EncodeOps(const std::vector<Op>& ops);

/// Deterministic schedule bytes for seeded fuzzing: `num_ops` wire records
/// drawn from a PRNG seeded with `seed`.
std::vector<uint8_t> GenerateOpBytes(uint64_t seed, size_t num_ops);

/// Stable 64-bit hash of a schedule's wire bytes (the op-schedule hash
/// embedded in replay tokens).
uint64_t ScheduleHash(const std::vector<uint8_t>& bytes);

/// Human-readable corpus files: a small header (config / fault / harness
/// seed) followed by one op per line. Minimized reproducers are written in
/// this form to tests/corpus/ so failures replay from source control.
struct CorpusCase {
  uint32_t config = 0;
  uint32_t fault = 0;
  uint64_t harness_seed = 0;
  std::vector<Op> ops;
};

std::string FormatCorpus(const CorpusCase& c);
bool ParseCorpus(const std::string& text, CorpusCase* out);
bool WriteCorpusFile(const std::string& path, const CorpusCase& c);
bool ReadCorpusFile(const std::string& path, CorpusCase* out);

}  // namespace qf::testing

#endif  // QUANTILEFILTER_TESTING_OP_STREAM_H_
