// Kill-anywhere crash-injection harness for the durable serving layer
// (DESIGN.md §14).
//
// One trial = one full crash/recover cycle driven from a deterministic
// seed:
//
//   1. Fork a child that serves a QfServer over a WAL directory. The
//      parent learns the port through a pipe.
//   2. Load it with a seeded schedule of pipelined INGEST batches and
//      SIGKILL it at a seed-chosen point — or, in torn mode, let the
//      FsStorage torn-write shim cut a segment append mid-frame and
//      SIGKILL from inside the storage layer.
//   3. Recover the storage read-only in the parent (the same bytes the
//      restarted server will read) and build two oracles:
//        * a mirror ShardedQuantileFilter (checkpoint chain + tail replay),
//          the bit-identity oracle;
//        * when the log alone covers history (no background checkpoint
//          chain), an ExactDetector over the acked prefix, the semantic
//          oracle — acked batches must be a prefix of the recovered log,
//          per connection.
//   4. Fork a second child over the same directory, and require: QUERY
//      answers bit-identical to the mirror, kStats durability counters
//      consistent with the parent's scan, and the alert stream of a
//      deterministic post-recovery ingest phase bit-identical (per shard)
//      to the mirror's predicted report sequence.
//
// The harness never runs server threads in the forking process: servers
// live only in forked children, so it is safe from a single-threaded gtest
// parent and from tools/qf_crashtest. Not TSan-compatible (TSan and fork()
// do not mix); the ctest wiring keeps it out of the sanitizer label.

#ifndef QUANTILEFILTER_TESTING_CRASH_HARNESS_H_
#define QUANTILEFILTER_TESTING_CRASH_HARNESS_H_

#include <cstdint>
#include <string>

namespace qf::testing {

struct CrashTrialOptions {
  uint64_t seed = 1;
  /// Reactor threads in both server children. Each reactor gets its own
  /// ingest connection with a disjoint key range.
  int reactors = 1;
  int num_shards = 2;
  /// Arm the FsStorage torn-write shim: the crash happens mid-segment-
  /// append, exercising recovery's torn-tail truncation.
  bool arm_torn_write = false;
  /// Server-side background checkpoint cadence (0 = log-only recovery,
  /// which also enables the ExactDetector semantic oracle).
  uint64_t checkpoint_interval_items = 0;
  /// WAL directory; created if missing, wiped after the trial. Must not be
  /// shared between concurrent trials.
  std::string dir;
  /// Ingest batches sent before/at the kill point.
  size_t batches = 64;
};

struct CrashTrialResult {
  bool ok = false;
  std::string error;        // first failed assertion, for diagnostics
  uint64_t acked_batches = 0;
  uint64_t logged_items = 0;      // items the parent's read-only scan saw
  uint64_t replayed_records = 0;  // restarted server's kStats view
  uint32_t torn_truncations = 0;  // from the parent's read-only scan
  bool killed_by_shim = false;    // torn shim fired (vs parent SIGKILL)
};

/// Runs one trial; returns result.ok. Fails closed on any divergence
/// between the restarted server and the oracles.
bool RunCrashTrial(const CrashTrialOptions& options, CrashTrialResult* result);

}  // namespace qf::testing

#endif  // QUANTILEFILTER_TESTING_CRASH_HARNESS_H_
