#include "testing/op_stream.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "common/random.h"

namespace qf::testing {
namespace {

// Selector-byte partition of [0, 256). Insert dominates so streams look like
// real ingest; structural ops (reset, checkpoint) stay rare enough that
// checkpoint work does not swamp the run. Kept in one table so the decoder,
// the canonical re-encoder and the documentation cannot drift apart.
struct KindRange {
  OpKind kind;
  uint8_t first;  // inclusive
  uint8_t last;   // inclusive
};

constexpr KindRange kKindTable[] = {
    {OpKind::kInsert, 0, 169},           // 170/256
    {OpKind::kFlush, 170, 184},          // 15/256
    {OpKind::kQuery, 185, 209},          // 25/256
    {OpKind::kDelete, 210, 221},         // 12/256
    {OpKind::kCriteriaChange, 222, 231}, // 10/256
    {OpKind::kMerge, 232, 241},          // 10/256
    {OpKind::kReset, 242, 244},          // 3/256
    {OpKind::kCheckpoint, 245, 255},     // 11/256
};

OpKind KindOfSelector(uint8_t sel) {
  for (const KindRange& r : kKindTable) {
    if (sel >= r.first && sel <= r.last) return r.kind;
  }
  return OpKind::kInsert;  // unreachable: the table covers [0, 255]
}

uint8_t CanonicalSelector(OpKind kind) {
  for (const KindRange& r : kKindTable) {
    if (r.kind == kind) return r.first;
  }
  return 0;
}

constexpr const char* kOpKindNames[kNumOpKinds] = {
    "insert", "flush", "query",  "delete",
    "criteria", "merge", "reset", "checkpoint",
};

}  // namespace

const char* OpKindName(OpKind kind) {
  const int i = static_cast<int>(kind);
  return (i >= 0 && i < kNumOpKinds) ? kOpKindNames[i] : "?";
}

bool ParseOpKind(const std::string& name, OpKind* out) {
  for (int i = 0; i < kNumOpKinds; ++i) {
    if (name == kOpKindNames[i]) {
      *out = static_cast<OpKind>(i);
      return true;
    }
  }
  return false;
}

std::vector<Op> DecodeOps(const uint8_t* data, size_t size) {
  std::vector<Op> ops;
  ops.reserve(size / kOpWireBytes);
  for (size_t pos = 0; pos + kOpWireBytes <= size; pos += kOpWireBytes) {
    Op op;
    op.kind = KindOfSelector(data[pos]);
    op.key = static_cast<uint16_t>(data[pos + 1] |
                                   (static_cast<uint16_t>(data[pos + 2]) << 8));
    op.value_sel = data[pos + 3];
    op.aux = data[pos + 4];
    ops.push_back(op);
  }
  return ops;
}

std::vector<Op> DecodeOps(const std::vector<uint8_t>& bytes) {
  return DecodeOps(bytes.data(), bytes.size());
}

std::vector<uint8_t> EncodeOps(const std::vector<Op>& ops) {
  std::vector<uint8_t> bytes;
  bytes.reserve(ops.size() * kOpWireBytes);
  for (const Op& op : ops) {
    bytes.push_back(CanonicalSelector(op.kind));
    bytes.push_back(static_cast<uint8_t>(op.key & 0xFF));
    bytes.push_back(static_cast<uint8_t>(op.key >> 8));
    bytes.push_back(op.value_sel);
    bytes.push_back(op.aux);
  }
  return bytes;
}

std::vector<uint8_t> GenerateOpBytes(uint64_t seed, size_t num_ops) {
  Rng rng(Mix64(seed ^ 0x0F5EC0DEULL));
  std::vector<uint8_t> bytes;
  bytes.reserve(num_ops * kOpWireBytes);
  for (size_t i = 0; i < num_ops; ++i) {
    uint64_t word = rng.Next();
    for (size_t b = 0; b < kOpWireBytes; ++b) {
      bytes.push_back(static_cast<uint8_t>(word & 0xFF));
      word >>= 8;
    }
  }
  return bytes;
}

uint64_t ScheduleHash(const std::vector<uint8_t>& bytes) {
  return HashBytes(bytes.data(), bytes.size(), 0x0F5EEDULL);
}

std::string FormatCorpus(const CorpusCase& c) {
  std::ostringstream out;
  out << "# qf_fuzz corpus v1\n";
  out << "config " << c.config << "\n";
  out << "fault " << c.fault << "\n";
  char seed[32];
  std::snprintf(seed, sizeof(seed), "%016llx",
                static_cast<unsigned long long>(c.harness_seed));
  out << "harness_seed " << seed << "\n";
  for (const Op& op : c.ops) {
    out << "op " << OpKindName(op.kind) << " " << op.key << " "
        << static_cast<unsigned>(op.value_sel) << " "
        << static_cast<unsigned>(op.aux) << "\n";
  }
  return out.str();
}

bool ParseCorpus(const std::string& text, CorpusCase* out) {
  CorpusCase c;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "config") {
      fields >> c.config;
      saw_header = true;
    } else if (tag == "fault") {
      fields >> c.fault;
    } else if (tag == "harness_seed") {
      std::string hex;
      fields >> hex;
      c.harness_seed = std::strtoull(hex.c_str(), nullptr, 16);
    } else if (tag == "op") {
      std::string kind;
      unsigned key = 0, value_sel = 0, aux = 0;
      fields >> kind >> key >> value_sel >> aux;
      Op op;
      if (!ParseOpKind(kind, &op.kind)) return false;
      op.key = static_cast<uint16_t>(key);
      op.value_sel = static_cast<uint8_t>(value_sel);
      op.aux = static_cast<uint8_t>(aux);
      c.ops.push_back(op);
    } else {
      return false;
    }
  }
  if (!saw_header) return false;
  *out = c;
  return true;
}

bool WriteCorpusFile(const std::string& path, const CorpusCase& c) {
  std::ofstream out(path);
  if (!out) return false;
  out << FormatCorpus(c);
  return static_cast<bool>(out);
}

bool ReadCorpusFile(const std::string& path, CorpusCase* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  return ParseCorpus(text.str(), out);
}

}  // namespace qf::testing
