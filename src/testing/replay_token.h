// Replay tokens: the single line a failing fuzz run prints, sufficient to
// reproduce the failure bit-identically.
//
// A token names the config, injected fault, PRNG seed and op count that
// regenerate the schedule, plus the op-schedule hash as an integrity stamp:
// replay regenerates the bytes from the seed, and a hash mismatch means the
// generator or decoder changed since the token was minted (the token is then
// refused instead of silently replaying a different schedule).
//
// Format (all fields fixed-order, ':'-separated):
//   QF1:c<config>:f<fault>:s<seed hex>:n<num_ops>:h<schedule hash hex>

#ifndef QUANTILEFILTER_TESTING_REPLAY_TOKEN_H_
#define QUANTILEFILTER_TESTING_REPLAY_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace qf::testing {

struct ReplayToken {
  uint32_t config = 0;
  uint32_t fault = 0;
  uint64_t seed = 0;
  uint64_t num_ops = 0;
  uint64_t schedule_hash = 0;

  friend bool operator==(const ReplayToken& a, const ReplayToken& b) {
    return a.config == b.config && a.fault == b.fault && a.seed == b.seed &&
           a.num_ops == b.num_ops && a.schedule_hash == b.schedule_hash;
  }
};

std::string FormatToken(const ReplayToken& token);

/// Parses a token string; returns false on any malformation.
bool ParseToken(std::string_view text, ReplayToken* out);

/// The harness seed a token implies (fixed derivation from the PRNG seed so
/// that replays reproduce batch splits, donor streams and pipeline
/// geometry; deliberately independent of the op bytes so minimized
/// subsequences keep the same auxiliary randomness).
uint64_t HarnessSeedFor(uint64_t seed);

}  // namespace qf::testing

#endif  // QUANTILEFILTER_TESTING_REPLAY_TOKEN_H_
