#include "testing/differential_harness.h"

namespace qf::testing {
namespace {

constexpr const char* kFaultNames[kNumFaults] = {
    "none",
    "drop-batch-item",
    "reorder-batch-splits",
    "no-tag-reject",
};

/// The configuration matrix. Exact-regime configs keep the key universe
/// small and memory generous enough that every key is candidate-resident
/// and all criteria have integral positive weights, so the filter is
/// semantically exact and the per-key oracles apply. Approx configs shrink
/// memory and widen the universe so the vague part, candidate election and
/// probabilistic rounding all run hot; there only bit-equivalence between
/// the scalar, batch and pipeline drivers is asserted.
std::vector<FuzzConfig> BuildConfigs() {
  std::vector<FuzzConfig> configs;

  configs.push_back(FuzzConfig{
      /*name=*/"exact-fixed",
      /*sketch=*/SketchKind::kCountSketch32,
      /*memory_bytes=*/16 * 1024,
      /*num_shards=*/2,
      /*election=*/ElectionStrategy::kComparative,
      /*key_universe=*/48,
      /*exact_regime=*/true,
      /*use_exact_detector=*/true,
      /*allow_merge=*/false,
      // weight +9, report threshold 50 — integral, so count-domain
      // (ExactDetector) and weight-domain (filter) tests coincide.
      /*criteria=*/{Criteria(5.0, 0.9, 100.0)},
      /*value_levels=*/{10.0, 90.0, 150.0, 600.0},
  });

  configs.push_back(FuzzConfig{
      /*name=*/"exact-multicriteria",
      /*sketch=*/SketchKind::kCountSketch32,
      /*memory_bytes=*/16 * 1024,
      /*num_shards=*/3,
      /*election=*/ElectionStrategy::kComparative,
      /*key_universe=*/40,
      /*exact_regime=*/true,
      /*use_exact_detector=*/false,  // mixed criteria: integer model only
      /*allow_merge=*/false,
      // all integral: +9/50, +19/600, +9/100
      /*criteria=*/
      {Criteria(5.0, 0.9, 100.0), Criteria(30.0, 0.95, 300.0),
       Criteria(10.0, 0.9, 50.0)},
      /*value_levels=*/{10.0, 60.0, 150.0, 400.0},
  });

  configs.push_back(FuzzConfig{
      /*name=*/"approx-frac-rounding",
      /*sketch=*/SketchKind::kCountSketch16,
      /*memory_bytes=*/8 * 1024,
      /*num_shards=*/2,
      /*election=*/ElectionStrategy::kComparative,
      /*key_universe=*/4096,
      /*exact_regime=*/false,
      /*use_exact_detector=*/false,
      /*allow_merge=*/true,
      // fractional positive weights: the probabilistic-rounding RNG path
      // runs on every abnormal item, so batch/scalar RNG lockstep is tested.
      /*criteria=*/{Criteria(2.0, 0.7, 100.0), Criteria(4.0, 0.65, 200.0)},
      /*value_levels=*/{10.0, 150.0, 250.0, 600.0},
  });

  configs.push_back(FuzzConfig{
      /*name=*/"approx-probabilistic",
      /*sketch=*/SketchKind::kCountSketch32,
      /*memory_bytes=*/4 * 1024,
      /*num_shards=*/4,
      /*election=*/ElectionStrategy::kProbabilistic,
      /*key_universe=*/8192,
      /*exact_regime=*/false,
      /*use_exact_detector=*/false,
      /*allow_merge=*/true,
      /*criteria=*/{Criteria(30.0, 0.95, 300.0)},
      /*value_levels=*/{10.0, 200.0, 350.0, 900.0},
  });

  configs.push_back(FuzzConfig{
      /*name=*/"approx-decay-countmin",
      /*sketch=*/SketchKind::kCountMin16,
      /*memory_bytes=*/8 * 1024,
      /*num_shards=*/3,
      /*election=*/ElectionStrategy::kDecay,
      /*key_universe=*/2048,
      /*exact_regime=*/false,
      /*use_exact_detector=*/false,
      /*allow_merge=*/true,
      /*criteria=*/{Criteria(5.0, 0.9, 100.0), Criteria(2.0, 0.7, 50.0)},
      /*value_levels=*/{10.0, 80.0, 150.0, 500.0},
  });

  configs.push_back(FuzzConfig{
      /*name=*/"approx-forceful-tiny",
      /*sketch=*/SketchKind::kCountSketch16,
      /*memory_bytes=*/2 * 1024,
      /*num_shards=*/2,
      /*election=*/ElectionStrategy::kForceful,
      /*key_universe=*/65535,
      /*exact_regime=*/false,
      /*use_exact_detector=*/false,
      /*allow_merge=*/true,
      /*criteria=*/{Criteria(30.0, 0.95, 300.0)},
      /*value_levels=*/{10.0, 250.0, 400.0, 800.0},
  });

  configs.push_back(FuzzConfig{
      /*name=*/"approx-blocked-frac",
      /*sketch=*/SketchKind::kCountSketch16,
      /*memory_bytes=*/8 * 1024,
      /*num_shards=*/2,
      /*election=*/ElectionStrategy::kComparative,
      /*key_universe=*/4096,
      /*exact_regime=*/false,
      /*use_exact_detector=*/false,
      /*allow_merge=*/true,
      // Same stream shape as approx-frac-rounding, but the vague part runs
      // the cache-blocked layout: demote/estimate/report paths, QFS4
      // checkpoints and blocked-vs-blocked merges all go through the
      // lockstep scalar/batch/pipeline comparison.
      /*criteria=*/{Criteria(2.0, 0.7, 100.0), Criteria(4.0, 0.65, 200.0)},
      /*value_levels=*/{10.0, 150.0, 250.0, 600.0},
      /*layout=*/VagueLayout::kBlocked,
  });

  configs.push_back(FuzzConfig{
      /*name=*/"approx-parked-8shard",
      /*sketch=*/SketchKind::kCountSketch16,
      /*memory_bytes=*/8 * 1024,
      /*num_shards=*/8,
      /*election=*/ElectionStrategy::kComparative,
      /*key_universe=*/4096,
      /*exact_regime=*/false,
      /*use_exact_detector=*/false,
      /*allow_merge=*/true,
      // More shards than most CI cores: the pipeline track oversubscribes
      // the machine, so its workers spend much of the run futex-parked and
      // the spin→yield→park ladder, publish wake hooks and drain-on-stop
      // path all sit inside the scalar/batch/pipeline lockstep comparison.
      // Uneven key traffic (4096 keys over 8 shards) keeps some workers
      // idle while others are saturated — park/wake churn mid-stream.
      /*criteria=*/{Criteria(2.0, 0.7, 100.0), Criteria(30.0, 0.95, 300.0)},
      /*value_levels=*/{10.0, 150.0, 350.0, 700.0},
  });

  configs.push_back(FuzzConfig{
      /*name=*/"durable-replay",
      /*sketch=*/SketchKind::kCountSketch16,
      /*memory_bytes=*/8 * 1024,
      /*num_shards=*/2,
      /*election=*/ElectionStrategy::kComparative,
      /*key_universe=*/4096,
      /*exact_regime=*/false,
      /*use_exact_detector=*/false,
      // No merges: MergeFrom bypasses the log, so the recovered track could
      // not mirror it (the serving layer has no merge op either).
      /*allow_merge=*/false,
      /*criteria=*/{Criteria(2.0, 0.7, 100.0), Criteria(4.0, 0.65, 200.0)},
      /*value_levels=*/{10.0, 150.0, 250.0, 600.0},
      /*layout=*/VagueLayout::kClassic,
      // WAL-write + crash + replay at every sharded barrier: checkpoint
      // chain (rng-chosen full/delta, with retention) + tail replay into a
      // fresh sharded filter must match the never-crashed sequential track
      // bit-for-bit, and a torn-tail copy must recover exactly a prefix.
      /*durable_replay=*/true,
  });

  return configs;
}

}  // namespace

const char* FaultName(Fault fault) {
  const uint32_t i = static_cast<uint32_t>(fault);
  return i < kNumFaults ? kFaultNames[i] : "?";
}

bool ParseFault(std::string_view name, Fault* out) {
  for (uint32_t i = 0; i < kNumFaults; ++i) {
    if (name == kFaultNames[i]) {
      *out = static_cast<Fault>(i);
      return true;
    }
  }
  return false;
}

const std::vector<FuzzConfig>& FuzzConfigs() {
  static const std::vector<FuzzConfig> configs = BuildConfigs();
  return configs;
}

FuzzResult RunFuzzCase(const FuzzConfig& config, Fault fault,
                       uint64_t harness_seed, const std::vector<Op>& ops) {
  switch (config.sketch) {
    case SketchKind::kCountSketch32:
      return internal::DifferentialHarness<CountSketch<int32_t>>(
                 config, fault, harness_seed)
          .Run(ops);
    case SketchKind::kCountSketch16:
      return internal::DifferentialHarness<CountSketch<int16_t>>(
                 config, fault, harness_seed)
          .Run(ops);
    case SketchKind::kCountMin16:
      return internal::DifferentialHarness<CountMinSketch<int16_t>>(
                 config, fault, harness_seed)
          .Run(ops);
  }
  FuzzResult result;
  result.failed = true;
  result.message = "unknown sketch kind in FuzzConfig";
  return result;
}

}  // namespace qf::testing
