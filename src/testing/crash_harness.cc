#include "testing/crash_harness.h"

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/exact_detector.h"
#include "common/random.h"
#include "durable/recovery.h"
#include "durable/storage.h"
#include "net/client.h"
#include "net/server.h"
#include "stream/item.h"

namespace qf::testing {

namespace {

using net::QfClient;
using net::QfServer;

// Integral weights (+9 abnormal, -1 normal, report at 50): the filter's
// probabilistic rounding never draws, so the ExactDetector oracle tracks
// Qweights exactly. Keys stay candidate-resident (small universe, ample
// memory), keeping the semantic oracle applicable to every key.
constexpr double kEps = 5.0;
constexpr double kDelta = 0.9;
constexpr double kThreshold = 100.0;
constexpr uint64_t kKeysPerConn = 48;
constexpr double kValues[] = {10.0, 150.0, 600.0};

QfServer::Options ServerOptions(const CrashTrialOptions& options) {
  QfServer::Options so;
  so.port = 0;
  so.num_shards = options.num_shards;
  so.reactors = options.reactors;
  so.filter.memory_bytes = 64 * 1024;
  so.criteria = Criteria(kEps, kDelta, kThreshold);
  so.alert_ring_records = 1u << 16;
  so.durable.fsync = durable::FsyncMode::kGroup;
  // Tiny segments force rotation under even a short load phase, so kills
  // land before, on and after segment boundaries.
  so.durable.segment_bytes = 1024;
  so.durable.checkpoint_interval_items = options.checkpoint_interval_items;
  so.durable.full_checkpoint_every = 2;
  return so;
}

struct ChildProc {
  pid_t pid = -1;
  uint16_t port = 0;
};

/// Forks a child that serves over `options.dir` and reports its ephemeral
/// port through a pipe. The child never returns: it _exits when the server
/// stops (or dies by signal).
bool SpawnServer(const CrashTrialOptions& options, bool arm_torn,
                 uint64_t torn_after_bytes, ChildProc* out,
                 std::string* error) {
  int fds[2];
  if (pipe(fds) != 0) {
    *error = "pipe() failed";
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    *error = "fork() failed";
    return false;
  }
  if (pid == 0) {
    close(fds[0]);
    durable::FsStorage storage(options.dir);
    if (!storage.ok()) _exit(10);
    if (arm_torn) storage.ArmTornWrite(torn_after_bytes, 0.5);
    QfServer::Options so = ServerOptions(options);
    so.durable.storage = &storage;
    QfServer server(so);
    if (!server.Start()) _exit(11);
    const uint16_t port = server.port();
    if (write(fds[1], &port, sizeof(port)) != sizeof(port)) _exit(12);
    close(fds[1]);
    server.Wait();
    _exit(0);
  }
  close(fds[1]);
  uint16_t port = 0;
  const ssize_t n = read(fds[0], &port, sizeof(port));
  close(fds[0]);
  if (n != static_cast<ssize_t>(sizeof(port))) {
    int status = 0;
    waitpid(pid, &status, 0);
    std::ostringstream msg;
    msg << "server child failed before reporting its port";
    if (WIFEXITED(status)) msg << " (exit code " << WEXITSTATUS(status) << ")";
    *error = msg.str();
    return false;
  }
  out->pid = pid;
  out->port = port;
  return true;
}

/// mkdir -p: FsStorage creates its own leaf directory, but not parents.
void MakeDirs(const std::string& path) {
  std::string cur;
  for (size_t pos = 0; pos <= path.size(); ++pos) {
    if (pos == path.size() || path[pos] == '/') {
      if (!cur.empty()) mkdir(cur.c_str(), 0755);
    }
    if (pos < path.size()) cur.push_back(path[pos]);
  }
}

void ReapBlobs(const std::string& dir) {
  durable::FsStorage storage(dir);
  std::vector<std::string> names;
  if (storage.ok() && storage.List(&names)) {
    for (const std::string& name : names) storage.Remove(name);
  }
  rmdir(dir.c_str());
}

bool SameItem(const Item& a, const Item& b) {
  return a.key == b.key && a.value == b.value;
}

}  // namespace

bool RunCrashTrial(const CrashTrialOptions& options,
                   CrashTrialResult* result) {
  *result = CrashTrialResult{};
  const auto fail = [&](const std::string& why) {
    result->error = why;
    return false;
  };
  if (options.dir.empty()) return fail("options.dir must be set");
  if (options.reactors < 1 || options.num_shards < 1) {
    return fail("reactors and num_shards must be >= 1");
  }
  MakeDirs(options.dir);
  const int conns = options.reactors;
  Rng rng(options.seed * 0x9E3779B97F4A7C15ULL + 0xC2A5);

  // Deterministic load schedule: every batch targets one connection, whose
  // key range is disjoint from every other's so per-key history is a
  // single-connection (hence known-order) stream.
  struct Batch {
    int conn;
    std::vector<Item> items;
  };
  std::vector<Batch> schedule;
  std::vector<std::vector<Item>> sent(static_cast<size_t>(conns));
  for (size_t b = 0; b < options.batches; ++b) {
    Batch batch;
    batch.conn = static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(conns)));
    const size_t count = 1 + static_cast<size_t>(rng.NextBounded(8));
    const uint64_t base =
        1 + static_cast<uint64_t>(batch.conn) * kKeysPerConn;
    for (size_t k = 0; k < count; ++k) {
      const Item item{base + rng.NextBounded(kKeysPerConn),
                      kValues[rng.NextBounded(3)]};
      batch.items.push_back(item);
      sent[static_cast<size_t>(batch.conn)].push_back(item);
    }
    schedule.push_back(std::move(batch));
  }
  const size_t kill_after_sends =
      static_cast<size_t>(rng.NextBounded(options.batches + 1));
  const uint64_t torn_after_bytes = 256 + rng.NextBounded(4096);

  // --- Phase 1: serve, load, kill -------------------------------------
  ChildProc child;
  std::string spawn_error;
  if (!SpawnServer(options, options.arm_torn_write, torn_after_bytes, &child,
                   &spawn_error)) {
    return fail("load phase: " + spawn_error);
  }
  {
    std::vector<std::unique_ptr<QfClient>> clients;
    bool connect_failed = false;
    for (int c = 0; c < conns; ++c) {
      clients.push_back(std::make_unique<QfClient>());
      if (!clients.back()->Connect("127.0.0.1", child.port)) {
        connect_failed = true;
        break;
      }
    }
    if (connect_failed) {
      kill(child.pid, SIGKILL);
      waitpid(child.pid, nullptr, 0);
      return fail("load phase: connect failed");
    }
    std::vector<uint64_t> acked(static_cast<size_t>(conns), 0);
    bool killed = false;
    for (size_t b = 0; b < schedule.size(); ++b) {
      if (!options.arm_torn_write && b == kill_after_sends) {
        kill(child.pid, SIGKILL);
        killed = true;
        break;
      }
      QfClient& cl = *clients[static_cast<size_t>(schedule[b].conn)];
      if (!cl.SendIngest(schedule[b].items)) break;  // server died under us
      // Keep a small in-flight window so acks interleave with sends and
      // the kill can land with work at every pipeline stage.
      while (cl.ingest_in_flight() > 4) {
        net::IngestAck ack;
        if (!cl.AwaitIngestAck(&ack)) break;
        acked[static_cast<size_t>(schedule[b].conn)] += ack.count;
        ++result->acked_batches;
      }
      if (!cl.connected()) break;
    }
    // Collect straggler acks: an ack received after the kill still proves
    // its batch was fsynced (group commit syncs before queueing acks).
    for (int c = 0; c < conns; ++c) {
      while (clients[static_cast<size_t>(c)]->ingest_in_flight() > 0) {
        net::IngestAck ack;
        if (!clients[static_cast<size_t>(c)]->AwaitIngestAck(&ack)) break;
        acked[static_cast<size_t>(c)] += ack.count;
        ++result->acked_batches;
      }
    }
    if (!killed) kill(child.pid, SIGKILL);  // idle kill / torn-shim backstop
    int status = 0;
    waitpid(child.pid, &status, 0);
    result->killed_by_shim =
        options.arm_torn_write && WIFSIGNALED(status) && !killed;

    // --- Phase 2: read-only recovery + oracles ------------------------
    durable::FsStorage ro(options.dir);
    if (!ro.ok()) return fail("read-only storage open failed: " + ro.error());
    const durable::Recovered rec = durable::Recover(ro, {});
    if (!rec.ok) {
      return fail("read-only recovery failed closed: " + rec.error);
    }
    result->logged_items = rec.tail.size();
    result->torn_truncations = rec.torn_truncations;
    if (result->killed_by_shim && rec.torn_truncations != 1) {
      std::ostringstream msg;
      msg << "torn-write shim fired but the scan repaired "
          << rec.torn_truncations << " torn frames (expected exactly 1)";
      return fail(msg.str());
    }

    const QfServer::Options so = ServerOptions(options);
    QfServer::Sharded mirror(so.filter, so.criteria, so.num_shards);
    std::string apply_error;
    if (!durable::ApplyCheckpoints(rec, &mirror, &apply_error)) {
      return fail("mirror checkpoint apply failed: " + apply_error);
    }
    for (const Item& item : rec.tail) mirror.Insert(item.key, item.value);

    ExactDetector exact(so.criteria);
    const bool log_only = !rec.had_checkpoint;
    if (log_only) {
      // Acked-prefix property, per connection: the recovered log's items
      // for connection c must be exactly a prefix of what c sent, at least
      // as long as what c saw acked. (Frames log atomically, so record
      // granularity never splits a batch.)
      std::vector<std::vector<Item>> logged(static_cast<size_t>(conns));
      for (const Item& item : rec.tail) {
        const int c = static_cast<int>((item.key - 1) / kKeysPerConn);
        if (c < 0 || c >= conns) {
          return fail("recovered log contains an item no connection sent");
        }
        logged[static_cast<size_t>(c)].push_back(item);
      }
      for (int c = 0; c < conns; ++c) {
        const auto& lc = logged[static_cast<size_t>(c)];
        const auto& sc = sent[static_cast<size_t>(c)];
        if (lc.size() > sc.size() ||
            !std::equal(lc.begin(), lc.end(), sc.begin(), SameItem)) {
          std::ostringstream msg;
          msg << "connection " << c << ": recovered log is not a prefix of "
              << "the sent stream (" << lc.size() << " logged, " << sc.size()
              << " sent)";
          return fail(msg.str());
        }
        if (lc.size() < acked[static_cast<size_t>(c)]) {
          std::ostringstream msg;
          msg << "connection " << c << ": " << acked[static_cast<size_t>(c)]
              << " items were acked but only " << lc.size()
              << " survived in the log (acked-durability violation)";
          return fail(msg.str());
        }
      }
      for (const Item& item : rec.tail) exact.Insert(item.key, item.value);
    }

    // --- Phase 3: restart, verify, continue ---------------------------
    ChildProc child2;
    if (!SpawnServer(options, /*arm_torn=*/false, 0, &child2, &spawn_error)) {
      return fail("restart phase: " + spawn_error);
    }
    const auto fail_kill = [&](const std::string& why) {
      kill(child2.pid, SIGKILL);
      waitpid(child2.pid, nullptr, 0);
      return fail(why);
    };
    QfClient client;
    if (!client.Connect("127.0.0.1", child2.port)) {
      return fail_kill("restart phase: connect failed: " + client.error());
    }
    if (!client.Drain()) {
      return fail_kill("restart phase: drain failed: " + client.error());
    }
    net::WireStats ws{};
    if (!client.Stats(&ws)) {
      return fail_kill("restart phase: stats failed: " + client.error());
    }
    result->replayed_records = ws.wal_records_replayed;
    if (ws.wal_records_replayed != rec.tail_records) {
      std::ostringstream msg;
      msg << "restarted server replayed " << ws.wal_records_replayed
          << " records; the read-only scan saw " << rec.tail_records;
      return fail_kill(msg.str());
    }
    if (ws.wal_torn_truncations != rec.torn_truncations) {
      std::ostringstream msg;
      msg << "restarted server repaired " << ws.wal_torn_truncations
          << " torn frames; the read-only scan saw " << rec.torn_truncations;
      return fail_kill(msg.str());
    }

    std::vector<uint64_t> keys;
    for (uint64_t k = 1;
         k <= static_cast<uint64_t>(conns) * kKeysPerConn + 8; ++k) {
      keys.push_back(k);  // + 8 never-inserted keys probe the empty answer
    }
    const auto check_queries = [&](const char* when) -> bool {
      std::vector<net::QueryAnswer> answers;
      if (!client.Query(keys, &answers) || answers.size() != keys.size()) {
        result->error = std::string(when) +
                        ": query failed: " + client.error();
        return false;
      }
      for (size_t k = 0; k < keys.size(); ++k) {
        const int64_t want = mirror.QueryQweight(keys[k]);
        const bool want_cand = mirror.IsCandidate(keys[k]);
        if (answers[k].qweight != want ||
            (answers[k].is_candidate != 0) != want_cand) {
          std::ostringstream msg;
          msg << when << ": key " << keys[k] << " answered qweight "
              << answers[k].qweight << " (candidate "
              << static_cast<int>(answers[k].is_candidate)
              << "), mirror has " << want << " (candidate " << want_cand
              << ")";
          result->error = msg.str();
          return false;
        }
        if (log_only && want_cand &&
            std::llround(exact.Qweight(keys[k])) != want) {
          std::ostringstream msg;
          msg << when << ": key " << keys[k]
              << " diverges from the ExactDetector oracle ("
              << std::llround(exact.Qweight(keys[k])) << " vs " << want
              << ")";
          result->error = msg.str();
          return false;
        }
      }
      return true;
    };
    if (!check_queries("post-recovery query")) {
      kill(child2.pid, SIGKILL);
      waitpid(child2.pid, nullptr, 0);
      return false;
    }

    // Alert continuation: the restarted filter must keep reporting exactly
    // where the mirror says the pre-crash state left off. One connection,
    // so the server's per-shard insert order is the send order.
    if (!client.Subscribe(true)) {
      return fail_kill("alert phase: subscribe failed: " + client.error());
    }
    std::vector<std::vector<std::pair<uint64_t, double>>> predicted(
        static_cast<size_t>(options.num_shards));
    std::vector<Item> continuation;
    for (size_t k = 0; k < 192; ++k) {
      // Hammer a few keys with abnormal values so several report cycles
      // complete; a sprinkle of normals exercises the -1 path.
      const Item item{1 + rng.NextBounded(8),
                      (rng.Next() & 7u) == 0 ? 10.0 : 600.0};
      continuation.push_back(item);
      if (mirror.Insert(item.key, item.value)) {
        predicted[static_cast<size_t>(mirror.ShardFor(item.key))]
            .emplace_back(item.key, item.value);
      }
      if (log_only) exact.Insert(item.key, item.value);
    }
    size_t expected_alerts = 0;
    for (const auto& shard : predicted) expected_alerts += shard.size();
    for (size_t pos = 0; pos < continuation.size(); pos += 16) {
      const size_t n = std::min<size_t>(16, continuation.size() - pos);
      if (!client.Ingest(std::span<const Item>(continuation.data() + pos,
                                               n))) {
        return fail_kill("alert phase: ingest failed: " + client.error());
      }
    }
    if (!client.Drain()) {
      return fail_kill("alert phase: drain failed: " + client.error());
    }
    std::vector<std::vector<std::pair<uint64_t, double>>> got(
        static_cast<size_t>(options.num_shards));
    for (size_t a = 0; a < expected_alerts; ++a) {
      net::WireAlert alert{};
      const auto wait = client.NextAlert(&alert, 10'000);
      if (wait != QfClient::AlertWait::kAlert) {
        std::ostringstream msg;
        msg << "alert phase: got " << a << " alerts, expected "
            << expected_alerts << " (wait="
            << (wait == QfClient::AlertWait::kTimeout ? "timeout" : "closed")
            << ")";
        return fail_kill(msg.str());
      }
      // Per-connection seqs start at 0 on a fresh subscription and must be
      // contiguous; a gap would mean the ring dropped (or replay duplicated)
      // an alert record.
      if (alert.seq != static_cast<uint64_t>(a)) {
        return fail_kill("alert phase: per-connection alert seq has a gap");
      }
      if (alert.shard >= static_cast<uint32_t>(options.num_shards)) {
        return fail_kill("alert phase: alert names an impossible shard");
      }
      got[alert.shard].emplace_back(alert.key, alert.value);
    }
    for (int s = 0; s < options.num_shards; ++s) {
      if (got[static_cast<size_t>(s)] != predicted[static_cast<size_t>(s)]) {
        std::ostringstream msg;
        msg << "alert phase: shard " << s << " alert sequence diverges from "
            << "the mirror's predicted report sequence";
        return fail_kill(msg.str());
      }
    }
    if (!check_queries("post-continuation query")) {
      kill(child2.pid, SIGKILL);
      waitpid(child2.pid, nullptr, 0);
      return false;
    }

    if (!client.Shutdown()) {
      return fail_kill("shutdown failed: " + client.error());
    }
    int status2 = 0;
    waitpid(child2.pid, &status2, 0);
    if (!WIFEXITED(status2) || WEXITSTATUS(status2) != 0) {
      return fail("restarted server did not exit cleanly");
    }
  }
  ReapBlobs(options.dir);
  result->ok = true;
  return true;
}

}  // namespace qf::testing
