// Delta-debugging op-stream minimization (ddmin, Zeller & Hildebrandt).
//
// Given a failing op sequence and a predicate "does this subsequence still
// fail?", repeatedly removes chunks of shrinking size while the failure
// persists. The predicate must be deterministic — the harness guarantees
// this because all auxiliary randomness derives from the harness seed, not
// from the ops — so the returned sequence is 1-minimal up to the eval
// budget: within budget, removing any single remaining op makes the failure
// disappear.

#ifndef QUANTILEFILTER_TESTING_MINIMIZER_H_
#define QUANTILEFILTER_TESTING_MINIMIZER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "testing/op_stream.h"

namespace qf::testing {

struct MinimizeStats {
  size_t predicate_evals = 0;
  size_t initial_ops = 0;
  size_t final_ops = 0;
};

/// Shrinks `ops` (which must satisfy `still_fails`) to a smaller failing
/// subsequence. `max_evals` caps predicate invocations so minimization of
/// very long schedules stays bounded; the result always still fails.
std::vector<Op> MinimizeOps(
    const std::vector<Op>& ops,
    const std::function<bool(const std::vector<Op>&)>& still_fails,
    size_t max_evals = 800, MinimizeStats* stats = nullptr);

}  // namespace qf::testing

#endif  // QUANTILEFILTER_TESTING_MINIMIZER_H_
