// Minimal command-line flag parser for the repository's tools.
//
// Supports "--name=value" and "--name value" forms, typed getters with
// defaults, and leftover positional arguments. No global registry — a
// parser instance is constructed from argc/argv and queried explicitly,
// which keeps tools self-describing and testable.

#ifndef QUANTILEFILTER_COMMON_FLAGS_H_
#define QUANTILEFILTER_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qf {

class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  /// True if "--name" was present (with or without a value).
  bool Has(const std::string& name) const;

  /// Typed getters; return `default_value` when absent or malformed.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Arguments that were not flags (nor flag values), in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were provided but never queried — typo detection for tools
  /// that want to reject unknown flags.
  std::vector<std::string> UnqueriedFlags() const;

 private:
  struct Flag {
    std::string name;
    std::string value;
    bool has_value = false;
    mutable bool queried = false;
  };

  const Flag* Find(const std::string& name) const;

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_COMMON_FLAGS_H_
