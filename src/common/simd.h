// Portable SIMD primitives for the hot insert path.
//
// Three things live here:
//   1. Prefetch / PrefetchWrite — cache-line prefetch wrappers used by the
//      batched insert window (core/quantile_filter.h) and the sketch
//      row-prefetch hooks.
//   2. FindU32 — "find first equal 32-bit lane" over a short array, the
//      F14/cuckoo-filter-style bucket probe. One vector compare covers a
//      whole 6-entry candidate bucket on AVX2 (two on SSE2); the scalar
//      fallback is bit-identical, so results never depend on the ISA.
//   3. SatAddBlockI16 / SatAddBlockI8 — lane-wise saturating add of one
//      64-byte counter block, the update kernel of the blocked vague part
//      (sketch/blocked_count_sketch.h). Saturating vector adds
//      (PADDSW/PADDSB) clamp exactly like common/counters.h's
//      SaturatingAdd whenever the per-lane delta fits the counter type,
//      so the scalar fallback is bit-identical.
//
// Dispatch is compile-time via feature macros: QF_SIMD_AVX2 when the TU is
// built with -mavx2/-march=native, QF_SIMD_SSE2 on any x86-64 target (SSE2
// is part of the base ABI), scalar otherwise (e.g. aarch64 without a NEON
// port yet). QF_SIMD_NAME names the active tier for diagnostics.

#ifndef QUANTILEFILTER_COMMON_SIMD_H_
#define QUANTILEFILTER_COMMON_SIMD_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#define QF_SIMD_AVX2 1
#endif
#if defined(__SSE2__) || defined(_M_X64)
#define QF_SIMD_SSE2 1
#endif

#if defined(QF_SIMD_AVX2) || defined(QF_SIMD_SSE2)
#include <immintrin.h>
#endif

namespace qf {

#if defined(QF_SIMD_AVX2)
inline constexpr const char* QF_SIMD_NAME = "avx2";
#elif defined(QF_SIMD_SSE2)
inline constexpr const char* QF_SIMD_NAME = "sse2";
#else
inline constexpr const char* QF_SIMD_NAME = "scalar";
#endif

/// Number of uint32_t lanes a single FindU32 probe may read past `n`.
/// Storage probed with FindU32 must keep this many readable (zero-filled)
/// elements after the last real one.
inline constexpr int kFindU32Pad = 8;

/// Hints the cache hierarchy to load the line holding `addr` for reading.
inline void Prefetch(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#elif defined(QF_SIMD_SSE2)
  _mm_prefetch(static_cast<const char*>(addr), _MM_HINT_T0);
#else
  (void)addr;
#endif
}

/// Same, but with intent to write (avoids a later read-for-ownership).
inline void PrefetchWrite(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
#else
  Prefetch(addr);
#endif
}

/// Index of the first element of `data[0, n)` equal to `target`, or -1.
/// REQUIRES: data[0, n + kFindU32Pad) must be readable — callers pad their
/// arrays; lanes beyond `n` are masked out, so padding contents are
/// irrelevant to the result.
inline int FindU32(const uint32_t* data, int n, uint32_t target) {
#if defined(QF_SIMD_AVX2)
  const __m256i t = _mm256_set1_epi32(static_cast<int32_t>(target));
  for (int i = 0; i < n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    uint32_t mask = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, t))));
    const int remaining = n - i;
    if (remaining < 8) mask &= (1u << remaining) - 1u;
    if (mask) return i + std::countr_zero(mask);
  }
  return -1;
#elif defined(QF_SIMD_SSE2)
  const __m128i t = _mm_set1_epi32(static_cast<int32_t>(target));
  for (int i = 0; i < n; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    uint32_t mask = static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, t))));
    const int remaining = n - i;
    if (remaining < 4) mask &= (1u << remaining) - 1u;
    if (mask) return i + std::countr_zero(mask);
  }
  return -1;
#else
  for (int i = 0; i < n; ++i) {
    if (data[i] == target) return i;
  }
  return -1;
#endif
}

/// Reference implementation of FindU32 (used by tests to pin down the SIMD
/// paths; also the scalar tier above).
inline int FindU32Scalar(const uint32_t* data, int n, uint32_t target) {
  for (int i = 0; i < n; ++i) {
    if (data[i] == target) return i;
  }
  return -1;
}

/// Bytes in one counter block (one cache line).
inline constexpr size_t kBlockBytes = 64;

/// dst[i] = saturate_i16(dst[i] + delta[i]) for the 32 int16 lanes of one
/// 64-byte block. REQUIRES: both pointers 64-byte aligned.
inline void SatAddBlockI16(int16_t* dst, const int16_t* delta) {
#if defined(QF_SIMD_AVX2)
  for (int i = 0; i < 2; ++i) {
    __m256i* d = reinterpret_cast<__m256i*>(dst) + i;
    const __m256i v = _mm256_adds_epi16(
        _mm256_load_si256(d),
        _mm256_load_si256(reinterpret_cast<const __m256i*>(delta) + i));
    _mm256_store_si256(d, v);
  }
#elif defined(QF_SIMD_SSE2)
  for (int i = 0; i < 4; ++i) {
    __m128i* d = reinterpret_cast<__m128i*>(dst) + i;
    const __m128i v = _mm_adds_epi16(
        _mm_load_si128(d),
        _mm_load_si128(reinterpret_cast<const __m128i*>(delta) + i));
    _mm_store_si128(d, v);
  }
#else
  for (size_t i = 0; i < kBlockBytes / sizeof(int16_t); ++i) {
    const int32_t sum = static_cast<int32_t>(dst[i]) + delta[i];
    const int32_t lo = sum < INT16_MIN ? INT16_MIN : sum;
    dst[i] = static_cast<int16_t>(lo > INT16_MAX ? INT16_MAX : lo);
  }
#endif
}

/// dst[i] = saturate_i8(dst[i] + delta[i]) for the 64 int8 lanes of one
/// 64-byte block. REQUIRES: both pointers 64-byte aligned.
inline void SatAddBlockI8(int8_t* dst, const int8_t* delta) {
#if defined(QF_SIMD_AVX2)
  for (int i = 0; i < 2; ++i) {
    __m256i* d = reinterpret_cast<__m256i*>(dst) + i;
    const __m256i v = _mm256_adds_epi8(
        _mm256_load_si256(d),
        _mm256_load_si256(reinterpret_cast<const __m256i*>(delta) + i));
    _mm256_store_si256(d, v);
  }
#elif defined(QF_SIMD_SSE2)
  for (int i = 0; i < 4; ++i) {
    __m128i* d = reinterpret_cast<__m128i*>(dst) + i;
    const __m128i v = _mm_adds_epi8(
        _mm_load_si128(d),
        _mm_load_si128(reinterpret_cast<const __m128i*>(delta) + i));
    _mm_store_si128(d, v);
  }
#else
  for (size_t i = 0; i < kBlockBytes; ++i) {
    const int32_t sum = static_cast<int32_t>(dst[i]) + delta[i];
    const int32_t lo = sum < INT8_MIN ? INT8_MIN : sum;
    dst[i] = static_cast<int8_t>(lo > INT8_MAX ? INT8_MAX : lo);
  }
#endif
}

}  // namespace qf

#endif  // QUANTILEFILTER_COMMON_SIMD_H_
