// Hashing substrate used by every sketch in this repository.
//
// Sketch algorithms (Count sketch, Count-Min sketch, SpaceSaving,
// QuantileFilter's candidate part, ...) need three primitives:
//   1. a strong 64-bit mix of an arbitrary key,
//   2. a family of pairwise-independent index hashes h_i(x) -> [0, w),
//   3. a family of sign hashes S_i(x) -> {-1, +1}.
// All three are provided here, seeded so that independent rows of a sketch
// observe (approximately) independent hash functions.

#ifndef QUANTILEFILTER_COMMON_HASH_H_
#define QUANTILEFILTER_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qf {

/// Finalizing 64-bit mixer (splitmix64 / MurmurHash3 fmix64 style).
/// Bijective on uint64_t; excellent avalanche behaviour.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Hashes a 64-bit key under a seed. Different seeds give hash functions
/// that behave independently for sketch purposes.
constexpr uint64_t HashKey(uint64_t key, uint64_t seed) {
  return Mix64(key ^ Mix64(seed));
}

/// Lemire's fast-range reduction: maps a uniform 64-bit hash to [0, n) with
/// one widening multiply instead of a hardware division. Bias is at most
/// n / 2^64 per value — negligible for any realistic table size. Unlike
/// `h % n` the mapping is order-preserving in the high hash bits, which is
/// irrelevant for sketches but means the low bits do not need to be good.
constexpr uint64_t FastRange64(uint64_t hash, uint64_t n) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(hash) * static_cast<unsigned __int128>(n)) >>
      64);
}

/// Version stamp of the key->slot mapping used by structures that place
/// keys by hash (CandidatePart::BucketOf, ShardedQuantileFilter::ShardFor).
/// Serialized state embeds this tag: a checkpoint written under a different
/// mapping would place every resident key in the wrong bucket/shard on
/// load (silently wrong queries), so readers reject on mismatch. History:
///   1 = `hash % n` modulo reduction (pre-SIMD seed code, no tag written)
///   2 = Lemire FastRange64 multiply-shift reduction; fingerprint from a
///       second, independently-seeded HashKey call
///   3 = single-hash probe: bucket AND fingerprint both derive from one
///       HashKey(key, seed) — bucket from the high bits (FastRange64),
///       fingerprint from the low 32 — halving the Mix64 work per probe.
///       Bucket placement is unchanged from scheme 2, but resident
///       fingerprints are not, so scheme-2 candidate payloads must be
///       rejected.
/// Bump this whenever the mapping of an existing key to its bucket, shard
/// or stored fingerprint changes.
inline constexpr uint32_t kKeyMappingScheme = 3;

/// MurmurHash3-style hash of an arbitrary byte string (for string keys such
/// as 5-tuples serialized to bytes).
uint64_t HashBytes(const void* data, size_t len, uint64_t seed);

/// Convenience overload for string keys.
inline uint64_t HashBytes(std::string_view s, uint64_t seed) {
  return HashBytes(s.data(), s.size(), seed);
}

/// A family of seeded hash functions: row i maps a key to a column in
/// [0, width) and to a sign in {-1, +1}. Rows use decorrelated seeds.
class HashFamily {
 public:
  /// Creates a family with `rows` independent members. `master_seed`
  /// determines every row seed, so two families built from the same master
  /// seed are identical (useful for tests).
  HashFamily(int rows, uint64_t master_seed);

  int rows() const { return rows_; }
  uint64_t master_seed() const { return master_seed_; }

  /// Column index of `key` in row `i`, uniform over [0, width).
  uint32_t Index(uint64_t key, int i, uint32_t width) const {
    // Lemire's multiply-shift range reduction on the high 32 hash bits:
    // bias is negligible for width << 2^32.
    uint32_t h = static_cast<uint32_t>(HashKey(key, index_seed(i)) >> 32);
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(h) * static_cast<uint64_t>(width)) >> 32);
  }

  /// Sign of `key` in row `i`: +1 or -1 with equal probability.
  int Sign(uint64_t key, int i) const {
    return (HashKey(key, sign_seed(i)) & 1) ? +1 : -1;
  }

  /// Raw 64-bit hash of `key` in row `i` (for callers that need more bits).
  uint64_t Raw(uint64_t key, int i) const {
    return HashKey(key, index_seed(i));
  }

 private:
  uint64_t index_seed(int i) const { return Mix64(master_seed_ + 2 * i); }
  uint64_t sign_seed(int i) const { return Mix64(master_seed_ + 2 * i + 1); }

  int rows_;
  uint64_t master_seed_;
};

/// Computes an f-bit fingerprint of `key` (f in [1, 32]). Never returns 0 so
/// that 0 can denote an empty candidate-part slot.
inline uint32_t Fingerprint(uint64_t key, uint64_t seed, int bits) {
  uint32_t mask = (bits >= 32) ? 0xFFFFFFFFu : ((1u << bits) - 1u);
  uint32_t fp = static_cast<uint32_t>(HashKey(key, seed)) & mask;
  return fp == 0 ? 1u : fp;
}

}  // namespace qf

#endif  // QUANTILEFILTER_COMMON_HASH_H_
