// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) and the checkpoint
// integrity envelope built on it.
//
// Checkpoints were originally raw "QFS2"/"QSH2" frames with no integrity
// check — fine for same-process restore, but the network serving layer
// (src/net/) ships them over TCP via CONTROL frames, where a truncated or
// bit-flipped blob must be detected before RestoreState interprets it.
// WrapCrc prepends a fixed-size envelope:
//
//   [u32 kCrcEnvelopeMagic "QFCK"] [u32 crc32(payload)] [payload...]
//
// UnwrapCrc recognizes three cases:
//   * enveloped, CRC matches      -> kOk, *payload points at the inner frame
//   * enveloped, CRC mismatches   -> kCorrupt (reject)
//   * no envelope (legacy blob)   -> kMissing, *payload is the whole input
//     (callers accept it with a warning so pre-CRC v2 checkpoints restore)
//
// Detection is exact, not heuristic: the envelope magic occupies the first
// four bytes, where every legacy checkpoint carries its own distinct frame
// magic ("QFS2"/"QSH2"), so no legacy blob can alias an envelope.

#ifndef QUANTILEFILTER_COMMON_CRC32_H_
#define QUANTILEFILTER_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qf {

/// CRC-32 of `data`. `seed` is the running CRC for incremental use: pass the
/// previous return value to continue a checksum across buffers.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(const std::vector<uint8_t>& bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

/// First word of a CRC-wrapped checkpoint ("QFCK", little-endian).
inline constexpr uint32_t kCrcEnvelopeMagic = 0x4B434651;

/// Result of UnwrapCrc; kMissing is the accept-with-warning legacy path.
enum class CrcStatus {
  kOk,       // envelope present, CRC verified
  kMissing,  // no envelope: a pre-CRC checkpoint frame
  kCorrupt,  // envelope present but CRC mismatch, or truncated envelope
};

/// Wraps `payload` in the CRC envelope (by value; the common producer call
/// is WrapCrc(SerializeState())).
std::vector<uint8_t> WrapCrc(std::vector<uint8_t> payload);

/// Classifies `data` and locates the inner payload. On kOk the outputs
/// reference the bytes after the envelope; on kMissing they alias the whole
/// input; on kCorrupt they are null/0.
CrcStatus UnwrapCrc(const uint8_t* data, size_t size,
                    const uint8_t** payload, size_t* payload_size);

inline CrcStatus UnwrapCrc(const std::vector<uint8_t>& bytes,
                           const uint8_t** payload, size_t* payload_size) {
  return UnwrapCrc(bytes.data(), bytes.size(), payload, payload_size);
}

}  // namespace qf

#endif  // QUANTILEFILTER_COMMON_CRC32_H_
