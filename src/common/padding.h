// Cache-line padding utilities.
//
// Per-thread metric cells (obs/registry.h), SPSC ring indices and the
// pipeline's worker state all rely on keeping hot words on private cache
// lines so that independent writers never false-share. The constant and the
// wrapper live here so every layer pads the same way.

#ifndef QUANTILEFILTER_COMMON_PADDING_H_
#define QUANTILEFILTER_COMMON_PADDING_H_

#include <cstddef>

namespace qf {

/// Destructive-interference distance. 64 bytes covers x86-64 and most
/// AArch64 parts; std::hardware_destructive_interference_size is not used
/// because libstdc++ warns that its value is ABI-unstable.
inline constexpr size_t kCacheLineBytes = 64;

/// Value wrapper that owns a full cache line. An array of Padded<T> gives
/// each element its own line, so concurrent writers to distinct elements
/// never contend.
template <typename T>
struct alignas(kCacheLineBytes) Padded {
  T value{};
};

}  // namespace qf

#endif  // QUANTILEFILTER_COMMON_PADDING_H_
