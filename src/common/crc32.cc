#include "common/crc32.h"

#include <array>
#include <cstring>

namespace qf {
namespace {

// Slice-by-four tables: table[0] is the classic byte-at-a-time CRC-32
// table; table[1..3] extend it so the hot loop folds four bytes per step.
struct CrcTables {
  std::array<std::array<uint32_t, 256>, 4> t;
};

const CrcTables& Tables() {
  static const CrcTables tables = [] {
    CrcTables out;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c >> 1) ^ ((c & 1) ? 0xEDB88320u : 0);
      }
      out.t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      out.t[1][i] = (out.t[0][i] >> 8) ^ out.t[0][out.t[0][i] & 0xFF];
      out.t[2][i] = (out.t[1][i] >> 8) ^ out.t[0][out.t[1][i] & 0xFF];
      out.t[3][i] = (out.t[2][i] >> 8) ^ out.t[0][out.t[2][i] & 0xFF];
    }
    return out;
  }();
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const CrcTables& tab = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (len >= 4) {
    uint32_t word;
    std::memcpy(&word, p, 4);
    word ^= crc;
    crc = tab.t[3][word & 0xFF] ^ tab.t[2][(word >> 8) & 0xFF] ^
          tab.t[1][(word >> 16) & 0xFF] ^ tab.t[0][word >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

std::vector<uint8_t> WrapCrc(std::vector<uint8_t> payload) {
  const uint32_t crc = Crc32(payload.data(), payload.size());
  std::vector<uint8_t> out;
  out.reserve(payload.size() + 8);
  const uint32_t magic = kCrcEnvelopeMagic;
  const uint8_t* m = reinterpret_cast<const uint8_t*>(&magic);
  const uint8_t* c = reinterpret_cast<const uint8_t*>(&crc);
  out.insert(out.end(), m, m + 4);
  out.insert(out.end(), c, c + 4);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

CrcStatus UnwrapCrc(const uint8_t* data, size_t size,
                    const uint8_t** payload, size_t* payload_size) {
  *payload = nullptr;
  *payload_size = 0;
  uint32_t magic = 0;
  if (size >= 4) std::memcpy(&magic, data, 4);
  if (size < 4 || magic != kCrcEnvelopeMagic) {
    // Not enveloped: a legacy frame (or garbage that RestoreState's own
    // magic checks will reject).
    *payload = data;
    *payload_size = size;
    return CrcStatus::kMissing;
  }
  if (size < 8) return CrcStatus::kCorrupt;
  uint32_t expected = 0;
  std::memcpy(&expected, data + 4, 4);
  if (Crc32(data + 8, size - 8) != expected) return CrcStatus::kCorrupt;
  *payload = data + 8;
  *payload_size = size - 8;
  return CrcStatus::kOk;
}

}  // namespace qf
