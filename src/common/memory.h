// Byte-budget helpers.
//
// The paper's evaluation sweeps total memory (2^15 .. 2^30 bytes) and splits
// it between structures (e.g. candidate:vague = 4:1). Every detector in this
// repository is constructed from a byte budget, so sizing arithmetic lives
// here in one place.

#ifndef QUANTILEFILTER_COMMON_MEMORY_H_
#define QUANTILEFILTER_COMMON_MEMORY_H_

#include <cstddef>
#include <cstdint>

namespace qf {

/// Number of elements of `elem_bytes` each that fit in `budget_bytes`,
/// never less than `min_elems`.
constexpr size_t ElemsForBudget(size_t budget_bytes, size_t elem_bytes,
                                size_t min_elems = 1) {
  size_t n = elem_bytes == 0 ? min_elems : budget_bytes / elem_bytes;
  return n < min_elems ? min_elems : n;
}

/// Splits `budget_bytes` into `num` : `den` parts and returns the `num`
/// share. Used for the candidate:vague split (default 4:1).
constexpr size_t Share(size_t budget_bytes, size_t num, size_t den) {
  return budget_bytes * num / (num + den);
}

/// Rounds `n` down to the previous power of two (>= 1).
constexpr size_t FloorPow2(size_t n) {
  size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace qf

#endif  // QUANTILEFILTER_COMMON_MEMORY_H_
