// Saturating integer counter arithmetic.
//
// The paper stores vague-part Qweights in small integer counters (8/16/32
// bits) and requires that "operations must prevent overflow reversals,
// ignoring any addition or subtraction that would cause it" (Sec III-B,
// Technical Details). These helpers implement exactly that: an add that
// clamps at the numeric limits instead of wrapping.

#ifndef QUANTILEFILTER_COMMON_COUNTERS_H_
#define QUANTILEFILTER_COMMON_COUNTERS_H_

#include <cstdint>
#include <limits>
#include <type_traits>

namespace qf {

/// Adds `delta` to `value`, clamping at the representable range of IntT
/// instead of wrapping. `delta` is a wide integer so that callers can pass
/// estimates that themselves exceed IntT's range.
template <typename IntT>
constexpr IntT SaturatingAdd(IntT value, int64_t delta) {
  static_assert(std::is_signed_v<IntT> && std::is_integral_v<IntT>,
                "counters are signed integers");
  static_assert(sizeof(IntT) <= 4,
                "widths above 32 bits would overflow the int64 accumulator");
  constexpr int64_t kMin = std::numeric_limits<IntT>::min();
  constexpr int64_t kMax = std::numeric_limits<IntT>::max();
  int64_t v = static_cast<int64_t>(value);
  if (delta >= 0) {
    return (delta > kMax - v) ? static_cast<IntT>(kMax)
                              : static_cast<IntT>(v + delta);
  }
  return (delta < kMin - v) ? static_cast<IntT>(kMin)
                            : static_cast<IntT>(v + delta);
}

/// A counter cell with saturating arithmetic. Thin value wrapper so sketches
/// can store arrays of raw IntT but express intent at call sites.
template <typename IntT>
class SaturatingCounter {
 public:
  constexpr SaturatingCounter() : value_(0) {}
  explicit constexpr SaturatingCounter(IntT v) : value_(v) {}

  constexpr IntT value() const { return value_; }
  constexpr void Add(int64_t delta) { value_ = SaturatingAdd(value_, delta); }
  constexpr void Reset() { value_ = 0; }

 private:
  IntT value_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_COMMON_COUNTERS_H_
