#include "common/flags.h"

#include <cstdlib>

namespace qf {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    Flag flag;
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flag.name = body.substr(0, eq);
      flag.value = body.substr(eq + 1);
      flag.has_value = true;
    } else {
      flag.name = body;
      // "--name value" form: consume the next token iff it is not a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flag.value = argv[++i];
        flag.has_value = true;
      }
    }
    flags_.push_back(std::move(flag));
  }
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  // Last occurrence wins, matching common CLI conventions.
  const Flag* found = nullptr;
  for (const Flag& flag : flags_) {
    if (flag.name == name) {
      flag.queried = true;
      found = &flag;
    }
  }
  return found;
}

bool FlagParser::Has(const std::string& name) const {
  return Find(name) != nullptr;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  const Flag* flag = Find(name);
  return (flag != nullptr && flag->has_value) ? flag->value : default_value;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  const Flag* flag = Find(name);
  if (flag == nullptr || !flag->has_value) return default_value;
  char* end = nullptr;
  long long v = std::strtoll(flag->value.c_str(), &end, 0);
  return (end != nullptr && *end == '\0' && end != flag->value.c_str())
             ? static_cast<int64_t>(v)
             : default_value;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  const Flag* flag = Find(name);
  if (flag == nullptr || !flag->has_value) return default_value;
  char* end = nullptr;
  double v = std::strtod(flag->value.c_str(), &end);
  return (end != nullptr && *end == '\0' && end != flag->value.c_str())
             ? v
             : default_value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  const Flag* flag = Find(name);
  if (flag == nullptr) return default_value;
  if (!flag->has_value) return true;  // bare --name means true
  if (flag->value == "true" || flag->value == "1") return true;
  if (flag->value == "false" || flag->value == "0") return false;
  return default_value;
}

std::vector<std::string> FlagParser::UnqueriedFlags() const {
  std::vector<std::string> out;
  for (const Flag& flag : flags_) {
    if (!flag.queried) out.push_back(flag.name);
  }
  return out;
}

}  // namespace qf
