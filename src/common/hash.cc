#include "common/hash.h"

#include <cstring>

namespace qf {

namespace {

inline uint64_t Rotl64(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

}  // namespace

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  // MurmurHash3 x64 style core over 8-byte blocks, with a splitmix finalizer.
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint64_t kMul = 0x87C37B91114253D5ULL;
  uint64_t h = seed ^ (static_cast<uint64_t>(len) * kMul);

  while (len >= 8) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    k *= kMul;
    k = Rotl64(k, 31);
    k *= 0x4CF5AD432745937FULL;
    h ^= k;
    h = Rotl64(h, 27);
    h = h * 5 + 0x52DCE729;
    p += 8;
    len -= 8;
  }

  uint64_t tail = 0;
  for (size_t i = 0; i < len; ++i) {
    tail |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  h ^= Mix64(tail);
  return Mix64(h);
}

HashFamily::HashFamily(int rows, uint64_t master_seed)
    : rows_(rows), master_seed_(master_seed) {}

}  // namespace qf
