// Monotonic timestamping for the observability subsystem.
//
// Latency histograms and the trace ring need a cheap, monotonic, cross-
// thread-comparable clock. steady_clock on Linux resolves to clock_gettime
// (CLOCK_MONOTONIC) through the vDSO — ~20 ns per read, which is far below
// the per-batch granularity at which the hot paths sample it (obs
// instrumentation never timestamps per item).

#ifndef QUANTILEFILTER_COMMON_TIME_H_
#define QUANTILEFILTER_COMMON_TIME_H_

#include <chrono>
#include <cstdint>

namespace qf {

/// Nanoseconds on a monotonic clock with an arbitrary epoch. Values from
/// different threads are mutually comparable.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Wall-clock nanoseconds since the Unix epoch (for snapshot timestamps;
/// not monotonic, never used to compute durations).
inline uint64_t WallNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace qf

#endif  // QUANTILEFILTER_COMMON_TIME_H_
