// Tiny byte-buffer serialization helpers for checkpointing sketch state.
//
// Streams are little-endian host-layout POD copies; the format is meant for
// checkpoint/restore and monitor->collector shipping between builds of the
// same binary, not as a cross-architecture interchange format (trace files
// have their own versioned format in stream/trace_io.h).

#ifndef QUANTILEFILTER_COMMON_SERIALIZE_H_
#define QUANTILEFILTER_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace qf {

/// A read cursor over a byte buffer. Read* methods return false (and leave
/// outputs untouched) on underflow; `ok()` stays false afterwards.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buffer)
      : ByteReader(buffer.data(), buffer.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!ok_ || remaining() < sizeof(T)) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Advances past `n` bytes without copying them out.
  bool Skip(size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  template <typename T>
  bool ReadVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    if (!Read(&count)) return false;
    if (remaining() < count * sizeof(T)) {
      ok_ = false;
      return false;
    }
    out->resize(count);
    if (count > 0) std::memcpy(out->data(), data_ + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

template <typename T>
void AppendPod(const T& value, std::vector<uint8_t>* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
void AppendVector(const std::vector<T>& values, std::vector<uint8_t>* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  AppendPod(static_cast<uint64_t>(values.size()), out);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(values.data());
  out->insert(out->end(), p, p + values.size() * sizeof(T));
}

}  // namespace qf

#endif  // QUANTILEFILTER_COMMON_SERIALIZE_H_
