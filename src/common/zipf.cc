#include "common/zipf.h"

#include <cmath>

namespace qf {

ZipfSampler::ZipfSampler(uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - Hinv(H(2.5) - std::pow(2.0, -alpha));
}

double ZipfSampler::H(double x) const {
  // H(x) = (x^(1-alpha) - 1) / (1 - alpha), or ln(x) when alpha == 1.
  if (std::abs(alpha_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - alpha_) - 1.0) / (1.0 - alpha_);
}

double ZipfSampler::Hinv(double x) const {
  if (std::abs(alpha_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - alpha_), 1.0 / (1.0 - alpha_));
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  if (alpha_ <= 1e-12) return 1 + rng.NextBounded(n_);  // uniform fast path
  while (true) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = Hinv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= H(static_cast<double>(k) + 0.5) -
                 std::pow(static_cast<double>(k), -alpha_)) {
      return k;
    }
  }
}

}  // namespace qf
