// Fast deterministic PRNG used by workload generators and by the
// probabilistic-rounding path of QuantileFilter's vague part.
//
// std::mt19937_64 is avoided on the hot insertion path: the paper's
// fractional-Qweight rounding draws one random bit-string per item, so the
// generator must cost only a few cycles. xoshiro256** passes BigCrush and
// costs ~4 ops per draw.

#ifndef QUANTILEFILTER_COMMON_RANDOM_H_
#define QUANTILEFILTER_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "common/hash.h"

namespace qf {

/// xoshiro256** generator. Seeded via splitmix64 so any 64-bit seed yields a
/// well-dispersed state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    uint64_t s = seed;
    for (auto& word : state_) {
      s = Mix64(s);
      word = s;
    }
  }

  /// Next 64 uniform random bits.
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Multiplicative range reduction; bias negligible for bound << 2^64.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Snapshot / restore of the 4-word xoshiro state, for durable
  /// checkpoints (src/durable/): a recovered filter must continue the
  /// probabilistic-rounding draw sequence exactly where the crashed one
  /// left off. Restoring drops the Box-Muller cache — the insertion path
  /// never draws Gaussians, so nothing observable depends on it.
  void GetState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  void SetState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
    has_cached_gaussian_ = false;
  }

  /// Standard normal draw (Box-Muller; uses two uniforms per pair, caches
  /// the second).
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace qf

#endif  // QUANTILEFILTER_COMMON_RANDOM_H_
