// Zipf-distributed integer sampler.
//
// The paper's synthetic dataset draws keys (and one value component) from
// Zipf distributions with parameter alpha over supports of up to millions of
// elements. Building the full CDF would cost O(N) memory per sampler, so we
// use Hörmann's rejection-inversion method, which samples in O(1) expected
// time with O(1) state for any alpha > 0 and any support size.

#ifndef QUANTILEFILTER_COMMON_ZIPF_H_
#define QUANTILEFILTER_COMMON_ZIPF_H_

#include <cstdint>

#include "common/random.h"

namespace qf {

/// Samples from {1, ..., n} with P(k) proportional to 1 / k^alpha.
class ZipfSampler {
 public:
  /// `n` must be >= 1 and `alpha` >= 0 (alpha == 0 degenerates to uniform;
  /// alpha == 1 is handled via the logarithmic branch).
  ZipfSampler(uint64_t n, double alpha);

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

  /// Draws one sample in [1, n].
  uint64_t Sample(Rng& rng) const;

 private:
  // H(x) = integral of 1/x^alpha; see Hörmann, "Rejection-inversion to
  // generate variates from monotone discrete distributions" (1996).
  double H(double x) const;
  double Hinv(double x) const;

  uint64_t n_;
  double alpha_;
  double h_x1_;        // H(1.5) - 1
  double h_n_;         // H(n + 0.5)
  double s_;           // 2 - Hinv(H(2.5) - 1/2^alpha)
};

}  // namespace qf

#endif  // QUANTILEFILTER_COMMON_ZIPF_H_
