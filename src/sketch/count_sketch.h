// Count sketch (Charikar, Chen, Farach-Colton 2002) with signed, weighted,
// deletable updates and saturating small-integer counters.
//
// This is the statistical engine behind QuantileFilter's vague part
// (Sec II-C / III-A of the paper): d rows of w counters; item x updates
// C_i[h_i(x)] += S_i(x) * weight in every row; the estimate is the median of
// the d signed counter readings. Weights may be negative (Qweights usually
// are), which is why the Count sketch rather than positive-only sketches is
// the natural fit.
//
// CounterT selects the counter width (int8_t / int16_t / int32_t); all
// arithmetic saturates instead of wrapping, as the paper requires.

#ifndef QUANTILEFILTER_SKETCH_COUNT_SKETCH_H_
#define QUANTILEFILTER_SKETCH_COUNT_SKETCH_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/counters.h"
#include "common/hash.h"
#include "common/memory.h"
#include "common/serialize.h"
#include "common/simd.h"

namespace qf {

/// Returns the median of the first `n` elements of `v` (n >= 1, n <= 64).
/// For even n the lower median is returned, matching the usual sketch
/// convention of a conservative middle estimate.
int64_t MedianOfSmall(int64_t* v, int n);

/// CounterT may also be a floating-point type (float/double): counters then
/// accumulate exact fractional weights with no saturation — the
/// "straightforward solution" the paper contrasts with probabilistic
/// rounding (Sec III-A, Technical Details). Used by the rounding ablation.
template <typename CounterT = int32_t>
class CountSketch {
 public:
  static constexpr bool kFloatingCounters =
      std::is_floating_point_v<CounterT>;
  using counter_type = CounterT;

  /// `depth` rows of `width` counters each. Seed fixes the hash family.
  CountSketch(int depth, size_t width, uint64_t seed)
      : depth_(depth),
        width_(width < 1 ? 1 : width),
        hashes_(depth, seed),
        cells_(static_cast<size_t>(depth) * width_, 0) {}

  /// Builds a sketch of `depth` rows whose total counter storage is at most
  /// `bytes` bytes.
  static CountSketch FromBytes(size_t bytes, int depth, uint64_t seed) {
    size_t cells = ElemsForBudget(bytes, sizeof(CounterT), depth);
    return CountSketch(depth, cells / depth, seed);
  }

  int depth() const { return depth_; }
  size_t width() const { return width_; }
  size_t MemoryBytes() const { return cells_.size() * sizeof(CounterT); }

  /// Adds `weight` (possibly negative) for `key` to every row.
  void Add(uint64_t key, int64_t weight) {
    for (int i = 0; i < depth_; ++i) {
      CounterT& c = Cell(i, hashes_.Index(key, i, width_));
      if constexpr (kFloatingCounters) {
        c += static_cast<CounterT>(hashes_.Sign(key, i) * weight);
      } else {
        c = SaturatingAdd(c, hashes_.Sign(key, i) * weight);
      }
    }
  }

  /// Adds an exact real-valued weight. Only available with floating-point
  /// counters; integer configurations must round first (see
  /// core/qweight.h's unbiased probabilistic rounding).
  void AddReal(uint64_t key, double weight) {
    static_assert(kFloatingCounters,
                  "AddReal requires floating-point counters");
    for (int i = 0; i < depth_; ++i) {
      Cell(i, hashes_.Index(key, i, width_)) +=
          static_cast<CounterT>(hashes_.Sign(key, i) * weight);
    }
  }

  /// Median-of-rows estimate of the total weight of `key`. Rounded to the
  /// nearest integer for floating-point counters.
  int64_t Estimate(uint64_t key) const {
    int64_t vals[kMaxDepth];
    int d = std::min(depth_, kMaxDepth);
    for (int i = 0; i < d; ++i) {
      if constexpr (kFloatingCounters) {
        vals[i] = static_cast<int64_t>(
            std::llround(static_cast<double>(hashes_.Sign(key, i)) *
                         Cell(i, hashes_.Index(key, i, width_))));
      } else {
        vals[i] = static_cast<int64_t>(hashes_.Sign(key, i)) *
                  Cell(i, hashes_.Index(key, i, width_));
      }
    }
    return MedianOfSmall(vals, d);
  }

  /// Removes an estimated weight from `key`'s cells: subtracts
  /// S_i(x) * `amount` from each mapped counter. Used by the report-and-reset
  /// path ("decrease C_i[h_i(x)] by S_i(x) * Qw(x)").
  void Subtract(uint64_t key, int64_t amount) { Add(key, -amount); }

  /// Prefetches the d cells `key` maps to ahead of an Add/Estimate; each
  /// row's cell is an independent random access, so this hides up to d
  /// cache misses when issued early enough.
  void Prefetch(uint64_t key) const {
    for (int i = 0; i < depth_; ++i) {
      qf::Prefetch(&Cell(i, hashes_.Index(key, i, width_)));
    }
  }

  void Clear() { std::fill(cells_.begin(), cells_.end(), CounterT{0}); }

  /// True iff `other` has identical geometry and hash functions, i.e. the
  /// two sketches' counters are positionally compatible.
  bool Mergeable(const CountSketch& other) const {
    return depth_ == other.depth_ && width_ == other.width_ &&
           hashes_.master_seed() == other.hashes_.master_seed();
  }

  /// Cell-wise merge (linearity of the Count sketch): after merging, every
  /// key's estimate reflects both input streams. Returns false (no-op) if
  /// the sketches are not mergeable.
  bool MergeFrom(const CountSketch& other) {
    if (!Mergeable(other)) return false;
    for (size_t i = 0; i < cells_.size(); ++i) {
      if constexpr (kFloatingCounters) {
        cells_[i] += other.cells_[i];
      } else {
        cells_[i] =
            SaturatingAdd(cells_[i], static_cast<int64_t>(other.cells_[i]));
      }
    }
    return true;
  }

  /// Checkpointing: appends counter state to `out` / restores it. Restore
  /// fails (returns false) if the serialized geometry mismatches.
  void AppendTo(std::vector<uint8_t>* out) const {
    AppendPod(static_cast<uint32_t>(depth_), out);
    AppendPod(static_cast<uint64_t>(width_), out);
    AppendVector(cells_, out);
  }
  bool ReadFrom(ByteReader* reader) {
    uint32_t depth = 0;
    uint64_t width = 0;
    std::vector<CounterT> cells;
    if (!reader->Read(&depth) || !reader->Read(&width) ||
        !reader->ReadVector(&cells)) {
      return false;
    }
    if (static_cast<int>(depth) != depth_ || width != width_ ||
        cells.size() != cells_.size()) {
      return false;
    }
    cells_ = std::move(cells);
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  CounterT& Cell(int row, uint32_t col) {
    return cells_[static_cast<size_t>(row) * width_ + col];
  }
  const CounterT& Cell(int row, uint32_t col) const {
    return cells_[static_cast<size_t>(row) * width_ + col];
  }

  int depth_;
  size_t width_;
  HashFamily hashes_;
  std::vector<CounterT> cells_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_SKETCH_COUNT_SKETCH_H_
