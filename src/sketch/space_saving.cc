#include "sketch/space_saving.h"

#include <utility>

namespace qf {

SpaceSaving::SpaceSaving(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {
  heap_.reserve(capacity_);
  position_.reserve(capacity_);
}

size_t SpaceSaving::MemoryBytes() const {
  // Heap entries plus an amortized hash-map cost (~2 pointers per slot).
  return capacity_ * (sizeof(Entry) + sizeof(uint64_t) + 2 * sizeof(void*));
}

uint64_t SpaceSaving::Add(uint64_t key, uint64_t increment) {
  auto it = position_.find(key);
  if (it != position_.end()) {
    heap_[it->second].count += increment;
    SiftDown(it->second);
    return 0;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back(Entry{key, increment, 0});
    position_[key] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
    return 0;
  }
  // Evict the current minimum; the newcomer inherits its count as error.
  Entry& root = heap_[0];
  uint64_t evicted = root.key;
  position_.erase(evicted);
  root = Entry{key, root.count + increment, root.count};
  position_[key] = 0;
  SiftDown(0);
  return evicted;
}

bool SpaceSaving::Lookup(uint64_t key, Entry* entry) const {
  auto it = position_.find(key);
  if (it == position_.end()) return false;
  if (entry != nullptr) *entry = heap_[it->second];
  return true;
}

uint64_t SpaceSaving::Estimate(uint64_t key) const {
  Entry e;
  if (Lookup(key, &e)) return e.count;
  return heap_.empty() ? 0 : heap_[0].count;
}

void SpaceSaving::Clear() {
  heap_.clear();
  position_.clear();
}

void SpaceSaving::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    size_t smallest = i;
    size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && heap_[l].count < heap_[smallest].count) smallest = l;
    if (r < n && heap_[r].count < heap_[smallest].count) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    position_[heap_[i].key] = i;
    position_[heap_[smallest].key] = smallest;
    i = smallest;
  }
}

void SpaceSaving::SiftUp(size_t i) {
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (heap_[parent].count <= heap_[i].count) return;
    std::swap(heap_[i], heap_[parent]);
    position_[heap_[i].key] = i;
    position_[heap_[parent].key] = parent;
    i = parent;
  }
}

}  // namespace qf
