// Count-Min sketch (Cormode & Muthukrishnan 2005), extended with signed
// updates so it can serve as the alternative vague-part engine in the
// paper's "Choice 2" ablation (Sec III-D / Fig 12).
//
// Classic CM assumes non-negative weights and answers with the row minimum.
// Qweights are frequently negative; we keep the row-minimum estimator (it
// stays an upper-bound-biased estimate under mixed-sign noise, which is
// exactly the behaviourally "worse" comparator the paper evaluates) and use
// saturating signed counters.

#ifndef QUANTILEFILTER_SKETCH_COUNT_MIN_SKETCH_H_
#define QUANTILEFILTER_SKETCH_COUNT_MIN_SKETCH_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/counters.h"
#include "common/hash.h"
#include "common/memory.h"
#include "common/serialize.h"
#include "common/simd.h"

namespace qf {

template <typename CounterT = int32_t>
class CountMinSketch {
 public:
  /// Mirrors CountSketch: floating-point counters accumulate exact weights.
  static constexpr bool kFloatingCounters =
      std::is_floating_point_v<CounterT>;
  using counter_type = CounterT;

  CountMinSketch(int depth, size_t width, uint64_t seed)
      : depth_(depth),
        width_(width < 1 ? 1 : width),
        hashes_(depth, seed),
        cells_(static_cast<size_t>(depth) * width_, 0) {}

  static CountMinSketch FromBytes(size_t bytes, int depth, uint64_t seed) {
    size_t cells = ElemsForBudget(bytes, sizeof(CounterT), depth);
    return CountMinSketch(depth, cells / depth, seed);
  }

  int depth() const { return depth_; }
  size_t width() const { return width_; }
  size_t MemoryBytes() const { return cells_.size() * sizeof(CounterT); }

  /// Adds `weight` (possibly negative) for `key` to every row.
  void Add(uint64_t key, int64_t weight) {
    for (int i = 0; i < depth_; ++i) {
      CounterT& c = Cell(i, hashes_.Index(key, i, width_));
      if constexpr (kFloatingCounters) {
        c += static_cast<CounterT>(weight);
      } else {
        c = SaturatingAdd(c, weight);
      }
    }
  }

  /// Adds an exact real-valued weight (floating-point counters only).
  void AddReal(uint64_t key, double weight) {
    static_assert(kFloatingCounters,
                  "AddReal requires floating-point counters");
    for (int i = 0; i < depth_; ++i) {
      Cell(i, hashes_.Index(key, i, width_)) += static_cast<CounterT>(weight);
    }
  }

  /// Minimum-of-rows estimate of the total weight of `key`.
  int64_t Estimate(uint64_t key) const {
    int64_t best = std::numeric_limits<int64_t>::max();
    for (int i = 0; i < depth_; ++i) {
      int64_t v;
      if constexpr (kFloatingCounters) {
        v = static_cast<int64_t>(std::llround(
            static_cast<double>(Cell(i, hashes_.Index(key, i, width_)))));
      } else {
        v = static_cast<int64_t>(Cell(i, hashes_.Index(key, i, width_)));
      }
      best = std::min(best, v);
    }
    return best;
  }

  /// Removes an estimated weight from every mapped counter.
  void Subtract(uint64_t key, int64_t amount) { Add(key, -amount); }

  /// Prefetches the d cells `key` maps to ahead of an Add/Estimate
  /// (mirrors CountSketch::Prefetch so either engine works as a batched
  /// vague part).
  void Prefetch(uint64_t key) const {
    for (int i = 0; i < depth_; ++i) {
      qf::Prefetch(&Cell(i, hashes_.Index(key, i, width_)));
    }
  }

  void Clear() { std::fill(cells_.begin(), cells_.end(), CounterT{0}); }

  /// Geometry/hash compatibility; see CountSketch::Mergeable.
  bool Mergeable(const CountMinSketch& other) const {
    return depth_ == other.depth_ && width_ == other.width_ &&
           hashes_.master_seed() == other.hashes_.master_seed();
  }

  /// Cell-wise merge; CM estimates remain over-approximations of the union.
  bool MergeFrom(const CountMinSketch& other) {
    if (!Mergeable(other)) return false;
    for (size_t i = 0; i < cells_.size(); ++i) {
      if constexpr (kFloatingCounters) {
        cells_[i] += other.cells_[i];
      } else {
        cells_[i] =
            SaturatingAdd(cells_[i], static_cast<int64_t>(other.cells_[i]));
      }
    }
    return true;
  }

  void AppendTo(std::vector<uint8_t>* out) const {
    AppendPod(static_cast<uint32_t>(depth_), out);
    AppendPod(static_cast<uint64_t>(width_), out);
    AppendVector(cells_, out);
  }
  bool ReadFrom(ByteReader* reader) {
    uint32_t depth = 0;
    uint64_t width = 0;
    std::vector<CounterT> cells;
    if (!reader->Read(&depth) || !reader->Read(&width) ||
        !reader->ReadVector(&cells)) {
      return false;
    }
    if (static_cast<int>(depth) != depth_ || width != width_ ||
        cells.size() != cells_.size()) {
      return false;
    }
    cells_ = std::move(cells);
    return true;
  }

 private:
  CounterT& Cell(int row, uint32_t col) {
    return cells_[static_cast<size_t>(row) * width_ + col];
  }
  const CounterT& Cell(int row, uint32_t col) const {
    return cells_[static_cast<size_t>(row) * width_ + col];
  }

  int depth_;
  size_t width_;
  HashFamily hashes_;
  std::vector<CounterT> cells_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_SKETCH_COUNT_MIN_SKETCH_H_
