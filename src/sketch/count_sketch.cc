#include "sketch/count_sketch.h"

namespace qf {

namespace {

/// Compare-exchange: after the call a <= b. std::min/std::max compile to
/// cmov on x86, so the networks below are branch-free — no mispredicts on
/// the random counter values the estimate path feeds them.
inline void CmpSwap(int64_t& a, int64_t& b) {
  const int64_t lo = std::min(a, b);
  b = std::max(a, b);
  a = lo;
}

}  // namespace

int64_t MedianOfSmall(int64_t* v, int n) {
  switch (n) {
    case 1:
      return v[0];
    case 2:
      return std::min(v[0], v[1]);
    case 3: {  // hot path: the paper's default depth is 3
      // med3 = max(min(a,b), min(max(a,b), c)) — 4 cmov ops, no branches.
      int64_t a = v[0], b = v[1];
      const int64_t lo = std::min(a, b);
      const int64_t hi = std::max(a, b);
      return std::max(lo, std::min(hi, v[2]));
    }
    case 4: {  // 5-exchange sorting network; lower median = v[1]
      int64_t a = v[0], b = v[1], c = v[2], d = v[3];
      CmpSwap(a, b);
      CmpSwap(c, d);
      CmpSwap(a, c);
      CmpSwap(b, d);
      CmpSwap(b, c);
      return b;
    }
    case 5: {  // 9-exchange sorting network (optimal); median = v[2]
      int64_t a = v[0], b = v[1], c = v[2], d = v[3], e = v[4];
      CmpSwap(a, b);
      CmpSwap(d, e);
      CmpSwap(c, e);
      CmpSwap(c, d);
      CmpSwap(a, d);
      CmpSwap(a, c);
      CmpSwap(b, e);
      CmpSwap(b, d);
      CmpSwap(b, c);
      return c;
    }
    default:
      std::nth_element(v, v + (n - 1) / 2, v + n);
      return v[(n - 1) / 2];
  }
}

}  // namespace qf
