#include "sketch/count_sketch.h"

namespace qf {

int64_t MedianOfSmall(int64_t* v, int n) {
  if (n == 1) return v[0];
  if (n == 2) return std::min(v[0], v[1]);
  if (n == 3) {  // hot path: the paper's default depth is 3
    int64_t a = v[0], b = v[1], c = v[2];
    if (a > b) std::swap(a, b);
    return (c < a) ? a : std::min(b, c);
  }
  std::nth_element(v, v + (n - 1) / 2, v + n);
  return v[(n - 1) / 2];
}

}  // namespace qf
