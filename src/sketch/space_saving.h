// SpaceSaving heavy-hitter summary (Metwally, Agrawal, El Abbadi 2005).
//
// Substrate for the SQUAD baseline: SQUAD keeps full quantile state only for
// keys that SpaceSaving currently believes are heavy. The structure holds at
// most `capacity` keys; when a new key arrives at a full table, it evicts the
// key with the minimum count and inherits that count as over-estimation
// error.

#ifndef QUANTILEFILTER_SKETCH_SPACE_SAVING_H_
#define QUANTILEFILTER_SKETCH_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace qf {

class SpaceSaving {
 public:
  struct Entry {
    uint64_t key = 0;
    uint64_t count = 0;
    uint64_t error = 0;  // possible over-estimation inherited at eviction
  };

  explicit SpaceSaving(size_t capacity);

  size_t capacity() const { return capacity_; }
  size_t size() const { return heap_.size(); }
  size_t MemoryBytes() const;

  /// Records one occurrence of `key`. Returns the key evicted to make room,
  /// or 0 if nothing was evicted (0 is reserved as "no key").
  uint64_t Add(uint64_t key, uint64_t increment = 1);

  /// True if `key` is currently tracked; fills `entry` if so.
  bool Lookup(uint64_t key, Entry* entry) const;

  /// Estimated count of `key` (its tracked count, or the minimum count if
  /// untracked — the classic SpaceSaving upper bound).
  uint64_t Estimate(uint64_t key) const;

  /// All tracked entries, unordered.
  const std::vector<Entry>& entries() const { return heap_; }

  void Clear();

 private:
  void SiftDown(size_t i);
  void SiftUp(size_t i);

  size_t capacity_;
  std::vector<Entry> heap_;                       // min-heap by count
  std::unordered_map<uint64_t, size_t> position_;  // key -> heap index
};

}  // namespace qf

#endif  // QUANTILEFILTER_SKETCH_SPACE_SAVING_H_
