// Signed Tower sketch: a Count-sketch variant whose rows use different
// counter widths (8/16/32-bit), so low rows pack many small counters and
// high rows catch large Qweights without saturating.
//
// The paper leaves "which of the existing dozens of sketches suits the
// vague part best" as future work (Sec III-D, Choice 2); TowerSketch
// (Yang et al., cited as [42]) is the natural candidate because the vague
// part's counters are mostly near zero — exactly the regime tower layouts
// exploit. This adaptation keeps Count-sketch signed updates and median
// estimation but assigns row r the counter type widths_[r % 3].
//
// Satisfies the same vague-engine concept as CountSketch/CountMinSketch:
// FromBytes / Add / AddReal(static-asserted off) / Estimate / Subtract /
// Clear / depth / width / MemoryBytes / kFloatingCounters.

#ifndef QUANTILEFILTER_SKETCH_TOWER_SKETCH_H_
#define QUANTILEFILTER_SKETCH_TOWER_SKETCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/counters.h"
#include "common/hash.h"
#include "common/memory.h"
#include "common/serialize.h"
#include "common/simd.h"
#include "sketch/count_sketch.h"

namespace qf {

class TowerSketch {
 public:
  static constexpr bool kFloatingCounters = false;

  /// `depth` rows; row r gets counter width 8 << (r % levels) bits (8, 16,
  /// 32 for the default 3 levels) and a width that spends `bytes_per_row`
  /// bytes, so narrow-counter rows are proportionally wider.
  TowerSketch(int depth, size_t bytes_per_row, uint64_t seed)
      : depth_(depth < 1 ? 1 : depth), hashes_(depth_, seed) {
    rows_.reserve(depth_);
    for (int r = 0; r < depth_; ++r) {
      Row row;
      row.bits = 8 << (r % 3);
      size_t elem = static_cast<size_t>(row.bits) / 8;
      row.width = ElemsForBudget(bytes_per_row, elem, 1);
      row.cells8.assign(row.bits == 8 ? row.width : 0, 0);
      row.cells16.assign(row.bits == 16 ? row.width : 0, 0);
      row.cells32.assign(row.bits == 32 ? row.width : 0, 0);
      rows_.push_back(std::move(row));
    }
  }

  static TowerSketch FromBytes(size_t bytes, int depth, uint64_t seed) {
    int d = depth < 1 ? 1 : depth;
    return TowerSketch(d, bytes / static_cast<size_t>(d), seed);
  }

  int depth() const { return depth_; }
  size_t width() const { return rows_.empty() ? 0 : rows_[0].width; }
  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const Row& row : rows_) {
      bytes += row.cells8.size() + 2 * row.cells16.size() +
               4 * row.cells32.size();
    }
    return bytes;
  }

  void Add(uint64_t key, int64_t weight) {
    for (int r = 0; r < depth_; ++r) {
      Row& row = rows_[r];
      uint32_t col = hashes_.Index(key, r, static_cast<uint32_t>(row.width));
      int64_t delta = hashes_.Sign(key, r) * weight;
      switch (row.bits) {
        case 8:
          row.cells8[col] = SaturatingAdd(row.cells8[col], delta);
          break;
        case 16:
          row.cells16[col] = SaturatingAdd(row.cells16[col], delta);
          break;
        default:
          row.cells32[col] = SaturatingAdd(row.cells32[col], delta);
          break;
      }
    }
  }

  int64_t Estimate(uint64_t key) const {
    int64_t vals[64];
    int d = std::min(depth_, 64);
    for (int r = 0; r < d; ++r) {
      const Row& row = rows_[r];
      uint32_t col = hashes_.Index(key, r, static_cast<uint32_t>(row.width));
      int64_t cell;
      switch (row.bits) {
        case 8:
          cell = row.cells8[col];
          break;
        case 16:
          cell = row.cells16[col];
          break;
        default:
          cell = row.cells32[col];
          break;
      }
      vals[r] = static_cast<int64_t>(hashes_.Sign(key, r)) * cell;
    }
    return MedianOfSmall(vals, d);
  }

  void Subtract(uint64_t key, int64_t amount) { Add(key, -amount); }

  /// Prefetches the cell `key` maps to in every row (mirrors
  /// CountSketch::Prefetch so TowerSketch works as a batched vague part).
  void Prefetch(uint64_t key) const {
    for (int r = 0; r < depth_; ++r) {
      const Row& row = rows_[r];
      uint32_t col = hashes_.Index(key, r, static_cast<uint32_t>(row.width));
      switch (row.bits) {
        case 8:
          qf::Prefetch(&row.cells8[col]);
          break;
        case 16:
          qf::Prefetch(&row.cells16[col]);
          break;
        default:
          qf::Prefetch(&row.cells32[col]);
          break;
      }
    }
  }

  void Clear() {
    for (Row& row : rows_) {
      std::fill(row.cells8.begin(), row.cells8.end(), int8_t{0});
      std::fill(row.cells16.begin(), row.cells16.end(), int16_t{0});
      std::fill(row.cells32.begin(), row.cells32.end(), int32_t{0});
    }
  }

  bool Mergeable(const TowerSketch& other) const {
    if (depth_ != other.depth_ ||
        hashes_.master_seed() != other.hashes_.master_seed()) {
      return false;
    }
    for (int r = 0; r < depth_; ++r) {
      if (rows_[r].width != other.rows_[r].width ||
          rows_[r].bits != other.rows_[r].bits) {
        return false;
      }
    }
    return true;
  }

  bool MergeFrom(const TowerSketch& other) {
    if (!Mergeable(other)) return false;
    for (int r = 0; r < depth_; ++r) {
      Row& mine = rows_[r];
      const Row& theirs = other.rows_[r];
      for (size_t i = 0; i < mine.cells8.size(); ++i) {
        mine.cells8[i] = SaturatingAdd(
            mine.cells8[i], static_cast<int64_t>(theirs.cells8[i]));
      }
      for (size_t i = 0; i < mine.cells16.size(); ++i) {
        mine.cells16[i] = SaturatingAdd(
            mine.cells16[i], static_cast<int64_t>(theirs.cells16[i]));
      }
      for (size_t i = 0; i < mine.cells32.size(); ++i) {
        mine.cells32[i] = SaturatingAdd(
            mine.cells32[i], static_cast<int64_t>(theirs.cells32[i]));
      }
    }
    return true;
  }

  void AppendTo(std::vector<uint8_t>* out) const {
    AppendPod(static_cast<uint32_t>(depth_), out);
    for (const Row& row : rows_) {
      AppendPod(static_cast<uint32_t>(row.bits), out);
      AppendVector(row.cells8, out);
      AppendVector(row.cells16, out);
      AppendVector(row.cells32, out);
    }
  }
  bool ReadFrom(ByteReader* reader) {
    uint32_t depth = 0;
    if (!reader->Read(&depth) || static_cast<int>(depth) != depth_) {
      return false;
    }
    for (Row& row : rows_) {
      uint32_t bits = 0;
      std::vector<int8_t> c8;
      std::vector<int16_t> c16;
      std::vector<int32_t> c32;
      if (!reader->Read(&bits) || !reader->ReadVector(&c8) ||
          !reader->ReadVector(&c16) || !reader->ReadVector(&c32)) {
        return false;
      }
      if (static_cast<int>(bits) != row.bits ||
          c8.size() != row.cells8.size() ||
          c16.size() != row.cells16.size() ||
          c32.size() != row.cells32.size()) {
        return false;
      }
      row.cells8 = std::move(c8);
      row.cells16 = std::move(c16);
      row.cells32 = std::move(c32);
    }
    return true;
  }

 private:
  struct Row {
    int bits = 8;
    size_t width = 0;
    std::vector<int8_t> cells8;
    std::vector<int16_t> cells16;
    std::vector<int32_t> cells32;
  };

  int depth_;
  HashFamily hashes_;
  std::vector<Row> rows_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_SKETCH_TOWER_SKETCH_H_
