// Cache-resident blocked Count sketch: all d counters for a key live in ONE
// 64-byte-aligned block (one cache line), chosen by a single 64-bit hash.
//
// The classic Count sketch (sketch/count_sketch.h) touches d independent
// random cache lines per Add/Estimate — at large budgets that is d misses
// per item and the dominant cost of QuantileFilter's vague part. The
// blocked layout trades the paper's fully independent per-row hashing for
// locality, in the spirit of blocked Bloom filters and Quancurrent-style
// locality-aware sketch updates (PAPERS.md):
//
//   * one HashKey(key, seed) picks the block via FastRange64 (one miss);
//   * a second Mix64 of that hash yields d distinct in-block lanes
//     (base + i*stride over the kLanes lanes of the line, stride odd so
//     lanes never collide) and d signs — no further hashing per row;
//   * the d signed saturating updates are a single lane-wise saturating
//     vector add of a scattered delta block (common/simd.h SatAddBlockI16/
//     I8, SSE2/AVX2 with a bit-identical scalar fallback);
//   * the estimate is the median of the d signed lane readings (the same
//     branch-free MedianOfSmall as the classic layout).
//
// Independence trade-off: rows share one block hash, so two keys that
// collide on the block collide in EVERY row (the classic layout gives
// independent collisions per row). Within a block the per-key lane
// placement and signs still differ, and the block count at a given byte
// budget equals the classic row width at depth 1, so the variance penalty
// is small at realistic budgets — tests/blocked_accuracy_test.cc pins the
// end-to-end ARE/F1 gap against the classic layout. DESIGN.md §12 has the
// full memory map and the analysis.
//
// Geometry invariant: counters per block = 64 / sizeof(CounterT)
// (32 for int16), so depth must be <= lanes; weights outside the counter
// range (demote/subtract paths) fall back to a scalar int64-clamped update
// that is exactly common/counters.h SaturatingAdd.

#ifndef QUANTILEFILTER_SKETCH_BLOCKED_COUNT_SKETCH_H_
#define QUANTILEFILTER_SKETCH_BLOCKED_COUNT_SKETCH_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/counters.h"
#include "common/hash.h"
#include "common/serialize.h"
#include "common/simd.h"
#include "sketch/count_sketch.h"  // MedianOfSmall

namespace qf {

/// Selects the vague-part engine per filter (core/quantile_filter.h
/// Options::vague_layout). kClassic is the paper's d-independent-rows
/// CountSketch; kBlocked is the cache-resident layout in this header.
/// The numeric values are serialized in checkpoint format v4.
enum class VagueLayout : uint8_t {
  kClassic = 0,
  kBlocked = 1,
};

inline const char* VagueLayoutName(VagueLayout layout) {
  return layout == VagueLayout::kBlocked ? "blocked" : "classic";
}

template <typename CounterT = int16_t>
class BlockedCountSketch {
  static_assert(std::is_integral_v<CounterT> && std::is_signed_v<CounterT> &&
                    sizeof(CounterT) <= 4,
                "BlockedCountSketch requires signed integer counters "
                "(int8_t/int16_t/int32_t); the floating-point ablation uses "
                "the classic layout");

 public:
  static constexpr bool kFloatingCounters = false;
  using counter_type = CounterT;

  /// Counters per 64-byte block; also the maximum depth.
  static constexpr int kLanes = static_cast<int>(kBlockBytes / sizeof(CounterT));
  static constexpr uint32_t kLaneMask = static_cast<uint32_t>(kLanes - 1);
  static constexpr int kLaneBits = std::bit_width(static_cast<unsigned>(kLanes)) - 1;

  BlockedCountSketch(int depth, size_t num_blocks, uint64_t seed)
      : depth_(std::clamp(depth, 1, kLanes)),
        num_blocks_(num_blocks < 1 ? 1 : num_blocks),
        seed_(seed),
        raw_(num_blocks_ * static_cast<size_t>(kLanes) + kLanes, 0) {}

  /// Builds a sketch whose counter storage is at most `bytes` bytes,
  /// rounded down to whole 64-byte blocks (minimum one block). `depth`
  /// plays the classic role of d estimate rows, clamped to kLanes.
  static BlockedCountSketch FromBytes(size_t bytes, int depth,
                                      uint64_t seed) {
    return BlockedCountSketch(depth, bytes / kBlockBytes, seed);
  }

  int depth() const { return depth_; }
  /// Classic-width analogue: counters per estimate row.
  size_t width() const { return num_blocks_; }
  size_t num_blocks() const { return num_blocks_; }
  size_t MemoryBytes() const { return num_blocks_ * kBlockBytes; }
  uint64_t seed() const { return seed_; }

  /// Adds `weight` (possibly negative) for `key` to its d lanes. One cache
  /// line is touched. The SIMD path handles any weight whose per-lane
  /// signed delta fits CounterT (every probabilistically-rounded item
  /// Qweight); larger magnitudes (demoted candidate Qweights, subtract of
  /// a big estimate) take the scalar int64-clamped path, which saturates
  /// identically.
  void Add(uint64_t key, int64_t weight) {
    const uint64_t h = HashKey(key, seed_);
    const uint64_t g = Mix64(h);
    CounterT* block = BlockFor(h);
    if (weight >= -kCounterMax && weight <= kCounterMax) {
      alignas(kBlockBytes) CounterT delta[kLanes] = {};
      const CounterT w = static_cast<CounterT>(weight);
      for (int i = 0; i < depth_; ++i) {
        delta[Lane(g, i)] = static_cast<CounterT>(Sign(g, i) * w);
      }
      SatAddBlock(block, delta);
      return;
    }
    for (int i = 0; i < depth_; ++i) {
      CounterT& c = block[Lane(g, i)];
      c = SaturatingAdd(c, Sign(g, i) * weight);
    }
  }

  /// Fused Add + Estimate for the filter's vague insert path (Algorithm 1
  /// lines 3-5 do exactly this pair): one hash, one block decode, one
  /// line, and the median reads the freshly-updated lanes straight from
  /// registers. Bit-identical to Add(key, w) followed by Estimate(key):
  /// the lanes are pairwise distinct, and the scalar int64-clamped
  /// SaturatingAdd matches the vector path for every representable weight.
  int64_t AddEstimate(uint64_t key, int64_t weight) {
    const uint64_t h = HashKey(key, seed_);
    const uint64_t g = Mix64(h);
    CounterT* block = BlockFor(h);
    int64_t vals[kLanes];
    for (int i = 0; i < depth_; ++i) {
      CounterT& c = block[Lane(g, i)];
      const int64_t sign = Sign(g, i);
      c = SaturatingAdd(c, sign * weight);
      vals[i] = sign * static_cast<int64_t>(c);
    }
    return MedianOfSmall(vals, depth_);
  }

  /// Median-of-rows estimate of the total weight of `key`.
  int64_t Estimate(uint64_t key) const {
    const uint64_t h = HashKey(key, seed_);
    const uint64_t g = Mix64(h);
    const CounterT* block = BlockFor(h);
    int64_t vals[kLanes];
    for (int i = 0; i < depth_; ++i) {
      vals[i] = static_cast<int64_t>(Sign(g, i)) * block[Lane(g, i)];
    }
    return MedianOfSmall(vals, depth_);
  }

  /// Removes an estimated weight (the report-and-reset path).
  void Subtract(uint64_t key, int64_t amount) { Add(key, -amount); }

  /// Prefetches the ONE line `key` maps to (write intent: the common
  /// follow-up is Add). Contrast with the classic layout's d-line loop.
  void Prefetch(uint64_t key) const {
    PrefetchWrite(BlockFor(HashKey(key, seed_)));
  }

  void Clear() { std::fill(raw_.begin(), raw_.end(), CounterT{0}); }

  /// True iff `other` has identical geometry and hash function.
  bool Mergeable(const BlockedCountSketch& other) const {
    return depth_ == other.depth_ && num_blocks_ == other.num_blocks_ &&
           seed_ == other.seed_;
  }

  /// Lane-wise saturating merge (linearity). Returns false on mismatch.
  bool MergeFrom(const BlockedCountSketch& other) {
    if (!Mergeable(other)) return false;
    CounterT* dst = data();
    const CounterT* src = other.data();
    if constexpr (sizeof(CounterT) <= 2) {
      // Every source counter fits CounterT, so the vector saturating add
      // equals the scalar int64-clamped SaturatingAdd lane for lane.
      for (size_t b = 0; b < num_blocks_; ++b) {
        SatAddBlock(dst + b * kLanes, src + b * kLanes);
      }
    } else {
      const size_t n = num_blocks_ * static_cast<size_t>(kLanes);
      for (size_t i = 0; i < n; ++i) {
        dst[i] = SaturatingAdd(dst[i], static_cast<int64_t>(src[i]));
      }
    }
    return true;
  }

  /// Checkpointing. The byte shape mirrors the classic sketch (geometry
  /// header + length-prefixed counter array) but is distinguished at the
  /// filter level by the v4 layout tag, so a classic blob can never be
  /// misread as blocked or vice versa.
  void AppendTo(std::vector<uint8_t>* out) const {
    AppendPod(static_cast<uint32_t>(depth_), out);
    AppendPod(static_cast<uint64_t>(num_blocks_), out);
    const size_t n = num_blocks_ * static_cast<size_t>(kLanes);
    AppendPod(static_cast<uint64_t>(n), out);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(data());
    out->insert(out->end(), p, p + n * sizeof(CounterT));
  }
  bool ReadFrom(ByteReader* reader) {
    uint32_t depth = 0;
    uint64_t blocks = 0;
    std::vector<CounterT> counters;
    if (!reader->Read(&depth) || !reader->Read(&blocks) ||
        !reader->ReadVector(&counters)) {
      return false;
    }
    const size_t n = num_blocks_ * static_cast<size_t>(kLanes);
    if (static_cast<int>(depth) != depth_ || blocks != num_blocks_ ||
        counters.size() != n) {
      return false;
    }
    std::copy(counters.begin(), counters.end(), data());
    return true;
  }

  // -- Test hooks (blocked_sketch_test.cc): expose the lane/sign decode so
  // distinctness and sign balance can be asserted without duplicating the
  // derivation.
  struct Placement {
    size_t block = 0;
    uint32_t lanes[kLanes] = {};
    int signs[kLanes] = {};
  };
  Placement PlacementOf(uint64_t key) const {
    const uint64_t h = HashKey(key, seed_);
    const uint64_t g = Mix64(h);
    Placement p;
    p.block = FastRange64(h, num_blocks_);
    for (int i = 0; i < depth_; ++i) {
      p.lanes[i] = Lane(g, i);
      p.signs[i] = Sign(g, i);
    }
    return p;
  }

 private:
  static constexpr int64_t kCounterMax = std::numeric_limits<CounterT>::max();

  /// 64-byte-aligned base of the counter array. The vector over-allocates
  /// by one block and the base is realigned on demand, so copies and moves
  /// (whose heap blocks land at different addresses) stay correct.
  CounterT* data() {
    return reinterpret_cast<CounterT*>(
        (reinterpret_cast<uintptr_t>(raw_.data()) + (kBlockBytes - 1)) &
        ~static_cast<uintptr_t>(kBlockBytes - 1));
  }
  const CounterT* data() const {
    return const_cast<BlockedCountSketch*>(this)->data();
  }

  CounterT* BlockFor(uint64_t h) {
    return data() + FastRange64(h, num_blocks_) * static_cast<size_t>(kLanes);
  }
  const CounterT* BlockFor(uint64_t h) const {
    return const_cast<BlockedCountSketch*>(this)->BlockFor(h);
  }

  /// Row i's lane: base + i*stride mod kLanes with stride odd, so the d
  /// lanes are pairwise distinct for any depth <= kLanes.
  static uint32_t Lane(uint64_t g, int i) {
    const uint32_t base = static_cast<uint32_t>(g) & kLaneMask;
    const uint32_t stride =
        (static_cast<uint32_t>(g >> kLaneBits) & kLaneMask) | 1u;
    return (base + static_cast<uint32_t>(i) * stride) & kLaneMask;
  }
  /// Row i's sign, from hash bits above the lane fields.
  static int Sign(uint64_t g, int i) {
    return ((g >> ((2 * kLaneBits + i) & 63)) & 1) ? +1 : -1;
  }

  static void SatAddBlock(CounterT* dst, const CounterT* delta) {
    if constexpr (sizeof(CounterT) == 2) {
      SatAddBlockI16(reinterpret_cast<int16_t*>(dst),
                     reinterpret_cast<const int16_t*>(delta));
    } else if constexpr (sizeof(CounterT) == 1) {
      SatAddBlockI8(reinterpret_cast<int8_t*>(dst),
                    reinterpret_cast<const int8_t*>(delta));
    } else {
      // No saturating 32-bit vector add below AVX-512; the scalar clamp is
      // still one cache line of work.
      for (int i = 0; i < kLanes; ++i) {
        dst[i] = SaturatingAdd(dst[i], static_cast<int64_t>(delta[i]));
      }
    }
  }

  int depth_;
  size_t num_blocks_;
  uint64_t seed_;
  std::vector<CounterT> raw_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_SKETCH_BLOCKED_COUNT_SKETCH_H_
