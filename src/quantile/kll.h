// KLL streaming quantile sketch (Karnin, Lang, Liberty, FOCS 2016).
//
// A hierarchy of compactors: level l holds items of weight 2^l. When a level
// fills, it is sorted and every other item (random parity) is promoted to the
// next level. Capacities decay geometrically (c = 2/3) from the top level, so
// total space is O(k / (1-c)). Like GK, queries materialize the weighted item
// set and are not constant-time — the "offline query" behaviour the paper
// contrasts with.

#ifndef QUANTILEFILTER_QUANTILE_KLL_H_
#define QUANTILEFILTER_QUANTILE_KLL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace qf {

class KllSketch {
 public:
  /// `k` controls accuracy: rank error is O(1/k) with high probability.
  explicit KllSketch(int k, uint64_t seed = 0xC0FFEEULL);

  uint64_t count() const { return count_; }
  size_t MemoryBytes() const;

  void Insert(double value);

  /// Approximate phi-quantile, phi in [0, 1]. Returns 0 for empty sketches.
  double Quantile(double phi) const;

  /// Approximate rank (number of items <= value).
  uint64_t Rank(double value) const;

  void Clear();

 private:
  size_t LevelCapacity(size_t level) const;
  void Compact();

  int k_;
  uint64_t count_ = 0;
  mutable Rng rng_;
  std::vector<std::vector<double>> levels_;  // levels_[l]: weight 2^l items
};

}  // namespace qf

#endif  // QUANTILEFILTER_QUANTILE_KLL_H_
