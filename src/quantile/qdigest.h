// Q-digest (Shrivastava et al., SenSys 2004): quantile sketch over a fixed
// integer domain, built for sensor networks — one of the paper's prior-art
// single-key schemes (Sec II-B).
//
// The structure is a partial binary tree over the domain [0, 2^log_universe):
// a node survives compression iff its count and its (parent-)triangle count
// straddle the n/k threshold. Quantile queries walk the surviving nodes in
// post-order of their intervals. Space is O(k log U); rank error is
// O(log(U)/k * n).

#ifndef QUANTILEFILTER_QUANTILE_QDIGEST_H_
#define QUANTILEFILTER_QUANTILE_QDIGEST_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace qf {

class QDigest {
 public:
  /// `k`: compression factor (bigger = more accurate, more space).
  /// `log_universe`: values are clamped to [0, 2^log_universe).
  explicit QDigest(int k = 64, int log_universe = 32);

  uint64_t count() const { return count_; }
  size_t node_count() const { return nodes_.size(); }
  size_t MemoryBytes() const;

  void Insert(uint64_t value, uint64_t weight = 1);

  /// Convenience overload for the double-valued stream interface; negative
  /// values clamp to 0.
  void Insert(double value) {
    Insert(value <= 0.0 ? 0 : static_cast<uint64_t>(value), 1);
  }

  /// Approximate phi-quantile, phi in [0, 1].
  uint64_t Quantile(double phi) const;

  void Clear();

 private:
  // Canonical q-digest node ids: the root interval [0, U) has id 1; node v
  // has children 2v and 2v+1. Leaves are at depth log_universe.
  uint64_t LeafId(uint64_t value) const;
  void Compress();

  int k_;
  int log_universe_;
  uint64_t universe_;
  uint64_t count_ = 0;
  uint64_t since_compress_ = 0;
  std::unordered_map<uint64_t, uint64_t> nodes_;  // node id -> count
};

}  // namespace qf

#endif  // QUANTILEFILTER_QUANTILE_QDIGEST_H_
