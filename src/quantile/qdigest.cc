#include "quantile/qdigest.h"

#include <algorithm>
#include <vector>

namespace qf {

QDigest::QDigest(int k, int log_universe)
    : k_(k < 4 ? 4 : k),
      log_universe_(log_universe < 1 ? 1 : (log_universe > 62 ? 62
                                                              : log_universe)),
      universe_(1ULL << log_universe_) {}

size_t QDigest::MemoryBytes() const {
  return sizeof(*this) +
         nodes_.size() * (2 * sizeof(uint64_t) + 2 * sizeof(void*));
}

uint64_t QDigest::LeafId(uint64_t value) const {
  if (value >= universe_) value = universe_ - 1;
  return universe_ + value;  // leaves occupy ids [U, 2U)
}

void QDigest::Insert(uint64_t value, uint64_t weight) {
  nodes_[LeafId(value)] += weight;
  count_ += weight;
  if (++since_compress_ >= static_cast<uint64_t>(k_)) {
    Compress();
    since_compress_ = 0;
  }
}

void QDigest::Compress() {
  if (count_ == 0) return;
  const uint64_t threshold = count_ / static_cast<uint64_t>(k_);
  if (threshold == 0) return;

  // Bottom-up pass: merge a node (and its sibling) into the parent when the
  // triangle count (node + sibling + parent) is at most the threshold.
  std::vector<uint64_t> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, cnt] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end(), std::greater<uint64_t>());  // deepest 1st

  for (uint64_t id : ids) {
    if (id <= 1) continue;
    auto it = nodes_.find(id);
    if (it == nodes_.end()) continue;
    uint64_t sibling = id ^ 1;
    uint64_t parent = id >> 1;
    uint64_t triangle = it->second;
    auto sib_it = nodes_.find(sibling);
    if (sib_it != nodes_.end()) triangle += sib_it->second;
    auto par_it = nodes_.find(parent);
    if (par_it != nodes_.end()) triangle += par_it->second;
    if (triangle <= threshold) {
      nodes_[parent] = triangle;
      nodes_.erase(id);
      if (sib_it != nodes_.end()) nodes_.erase(sibling);
    }
  }
}

uint64_t QDigest::Quantile(double phi) const {
  if (count_ == 0) return 0;
  phi = std::clamp(phi, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(phi * static_cast<double>(count_ - 1));

  // Sort surviving nodes by (interval upper bound, interval size): the
  // classic q-digest post-order walk, accumulating counts until the target
  // rank is covered.
  struct NodeView {
    uint64_t upper;
    uint64_t size;
    uint64_t count;
  };
  std::vector<NodeView> views;
  views.reserve(nodes_.size());
  for (const auto& [id, cnt] : nodes_) {
    // Node id covers values [lo, hi]: at depth d (id in [2^d, 2^{d+1})),
    // interval size is U >> d.
    int depth = 63 - __builtin_clzll(id);
    uint64_t size = universe_ >> depth;
    uint64_t lo = (id - (1ULL << depth)) * size;
    views.push_back(NodeView{lo + size - 1, size, cnt});
  }
  std::sort(views.begin(), views.end(), [](const NodeView& a,
                                           const NodeView& b) {
    if (a.upper != b.upper) return a.upper < b.upper;
    return a.size < b.size;
  });

  uint64_t cum = 0;
  for (const NodeView& v : views) {
    cum += v.count;
    if (cum > target) return v.upper;
  }
  return views.empty() ? 0 : views.back().upper;
}

void QDigest::Clear() {
  nodes_.clear();
  count_ = 0;
  since_compress_ = 0;
}

}  // namespace qf
