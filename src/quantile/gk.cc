#include "quantile/gk.h"

#include <algorithm>
#include <cmath>

namespace qf {

GkSummary::GkSummary(double eps) : eps_(eps <= 0 ? 1e-4 : eps) {
  compress_every_ = static_cast<uint64_t>(std::max(1.0, 1.0 / (2.0 * eps_)));
}

size_t GkSummary::MemoryBytes() const {
  return tuples_.capacity() * sizeof(Tuple) + sizeof(*this);
}

void GkSummary::Insert(double value) {
  // Locate the first tuple with a strictly larger value.
  auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](double v, const Tuple& t) { return v < t.value; });

  uint64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insertion: the new tuple's rank uncertainty is the current
    // allowed band, floor(2 * eps * n) - 1 (>= 0).
    double band = 2.0 * eps_ * static_cast<double>(count_);
    delta = band > 1.0 ? static_cast<uint64_t>(band) - 1 : 0;
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  ++count_;

  if (++since_compress_ >= compress_every_) {
    Compress();
    since_compress_ = 0;
  }
}

void GkSummary::Compress() {
  if (tuples_.size() < 3) return;
  const uint64_t band =
      static_cast<uint64_t>(2.0 * eps_ * static_cast<double>(count_));
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size());
  merged.push_back(tuples_.front());
  // Greedy right-to-left merge adapted to a single forward pass: absorb
  // tuple i into its successor when g_i + g_{i+1} + delta_{i+1} <= band.
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& cur = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (cur.g + next.g + next.delta <= band) {
      // Defer: fold cur's gap into next (done by mutating a copy below).
      tuples_[i + 1].g += cur.g;
    } else {
      merged.push_back(cur);
    }
  }
  merged.push_back(tuples_.back());
  tuples_ = std::move(merged);
}

double GkSummary::Quantile(double phi) const {
  if (count_ == 0) return 0.0;
  phi = std::clamp(phi, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(phi * static_cast<double>(count_ - 1));
  return ValueAtRank(rank);
}

double GkSummary::ValueAtRank(uint64_t rank) const {
  if (tuples_.empty()) return 0.0;
  if (rank >= count_) rank = count_ - 1;
  const uint64_t target = rank + 1;  // 1-based rank
  const uint64_t tolerance =
      static_cast<uint64_t>(eps_ * static_cast<double>(count_)) + 1;
  // Return the first tuple whose whole rank interval [rmin, rmax] lies
  // within `tolerance` of the target (the standard GK query).
  uint64_t rmin = 0;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    uint64_t rmax = rmin + t.delta;
    if (rmax <= target + tolerance && target <= rmin + tolerance) {
      return t.value;
    }
  }
  return tuples_.back().value;
}

void GkSummary::Clear() {
  tuples_.clear();
  count_ = 0;
  since_compress_ = 0;
}

}  // namespace qf
