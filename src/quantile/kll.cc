#include "quantile/kll.h"

#include <algorithm>
#include <cmath>

namespace qf {

namespace {
constexpr double kDecay = 2.0 / 3.0;  // capacity ratio between levels
}  // namespace

KllSketch::KllSketch(int k, uint64_t seed)
    : k_(k < 8 ? 8 : k), rng_(seed), levels_(1) {
  levels_[0].reserve(k_);
}

size_t KllSketch::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& level : levels_) bytes += level.capacity() * sizeof(double);
  return bytes;
}

size_t KllSketch::LevelCapacity(size_t level) const {
  // Top level has capacity k; each level below shrinks by kDecay, floor 2.
  size_t depth_from_top = levels_.size() - 1 - level;
  double cap = static_cast<double>(k_) * std::pow(kDecay,
                                                  static_cast<double>(
                                                      depth_from_top));
  return cap < 2.0 ? 2 : static_cast<size_t>(cap);
}

void KllSketch::Insert(double value) {
  levels_[0].push_back(value);
  ++count_;
  if (levels_[0].size() >= LevelCapacity(0)) Compact();
}

void KllSketch::Compact() {
  for (size_t l = 0; l < levels_.size(); ++l) {
    if (levels_[l].size() < LevelCapacity(l)) continue;
    if (l + 1 == levels_.size()) levels_.emplace_back();
    auto& cur = levels_[l];
    std::sort(cur.begin(), cur.end());
    // Promote every other item, random starting parity: unbiased for ranks.
    size_t start = rng_.Next() & 1;
    auto& up = levels_[l + 1];
    for (size_t i = start; i < cur.size(); i += 2) up.push_back(cur[i]);
    cur.clear();
  }
}

double KllSketch::Quantile(double phi) const {
  if (count_ == 0) return 0.0;
  phi = std::clamp(phi, 0.0, 1.0);

  // Materialize (value, weight) pairs, sort by value, walk the CDF.
  std::vector<std::pair<double, uint64_t>> items;
  for (size_t l = 0; l < levels_.size(); ++l) {
    uint64_t w = 1ULL << l;
    for (double v : levels_[l]) items.emplace_back(v, w);
  }
  if (items.empty()) return 0.0;
  std::sort(items.begin(), items.end());

  uint64_t total = 0;
  for (const auto& [v, w] : items) total += w;
  uint64_t target = static_cast<uint64_t>(phi * static_cast<double>(total));
  if (target >= total) target = total - 1;

  uint64_t cum = 0;
  for (const auto& [v, w] : items) {
    cum += w;
    if (cum > target) return v;
  }
  return items.back().first;
}

uint64_t KllSketch::Rank(double value) const {
  uint64_t rank = 0;
  for (size_t l = 0; l < levels_.size(); ++l) {
    uint64_t w = 1ULL << l;
    for (double v : levels_[l]) {
      if (v <= value) rank += w;
    }
  }
  return rank;
}

void KllSketch::Clear() {
  levels_.assign(1, {});
  levels_[0].reserve(k_);
  count_ = 0;
}

}  // namespace qf
