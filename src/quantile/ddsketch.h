// DDSketch (Masson, Rim, Lee, VLDB 2019): relative-error quantile sketch.
//
// Values are mapped to logarithmic buckets index = ceil(log_gamma(v)) with
// gamma = (1 + alpha) / (1 - alpha); any quantile is then accurate to
// relative error alpha. Bucket counts are stored in a dense circular store
// that collapses the lowest buckets when the bucket budget is exceeded
// (the standard "collapsing lowest" policy).

#ifndef QUANTILEFILTER_QUANTILE_DDSKETCH_H_
#define QUANTILEFILTER_QUANTILE_DDSKETCH_H_

#include <cstddef>
#include <cstdint>
#include <map>

namespace qf {

class DdSketch {
 public:
  /// `alpha`: relative accuracy (e.g. 0.01 = 1%). `max_buckets`: bucket
  /// budget before the lowest buckets collapse together.
  explicit DdSketch(double alpha = 0.01, size_t max_buckets = 2048);

  uint64_t count() const { return count_; }
  size_t bucket_count() const { return buckets_.size(); }
  size_t MemoryBytes() const;

  /// Inserts a value. Values <= 0 are clamped into the zero bucket.
  void Insert(double value);

  /// Approximate phi-quantile with relative error alpha.
  double Quantile(double phi) const;

  void Clear();

 private:
  int BucketIndex(double value) const;
  double BucketValue(int index) const;
  void CollapseIfNeeded();

  double alpha_;
  double gamma_;
  double log_gamma_;
  size_t max_buckets_;
  uint64_t count_ = 0;
  uint64_t zero_count_ = 0;
  std::map<int, uint64_t> buckets_;  // index -> count, ordered
};

}  // namespace qf

#endif  // QUANTILEFILTER_QUANTILE_DDSKETCH_H_
