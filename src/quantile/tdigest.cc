#include "quantile/tdigest.h"

#include <algorithm>
#include <cmath>

namespace qf {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

TDigest::TDigest(double compression)
    : compression_(compression < 20.0 ? 20.0 : compression) {
  buffer_.reserve(static_cast<size_t>(compression_) * 4);
}

size_t TDigest::MemoryBytes() const {
  return sizeof(*this) + centroids_.capacity() * sizeof(Centroid) +
         buffer_.capacity() * sizeof(double);
}

double TDigest::ScaleK(double q, double compression) {
  // k1 scale function: k(q) = (compression / 2*pi) * asin(2q - 1).
  q = std::clamp(q, 0.0, 1.0);
  return compression / (2.0 * kPi) * std::asin(2.0 * q - 1.0);
}

double TDigest::ScaleQ(double k, double compression) {
  return 0.5 * (std::sin(k * 2.0 * kPi / compression) + 1.0);
}

void TDigest::Insert(double value, uint64_t weight) {
  if (total_count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  for (uint64_t i = 0; i < weight; ++i) buffer_.push_back(value);
  total_count_ += weight;
  if (buffer_.size() >= buffer_.capacity()) Flush();
}

void TDigest::Flush() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());

  // Merge the sorted buffer and the sorted centroid list into a new centroid
  // list, closing a centroid whenever the scale-function budget is exhausted.
  std::vector<Centroid> incoming;
  incoming.reserve(centroids_.size() + buffer_.size());
  size_t ci = 0, bi = 0;
  while (ci < centroids_.size() || bi < buffer_.size()) {
    if (bi >= buffer_.size() ||
        (ci < centroids_.size() && centroids_[ci].mean <= buffer_[bi])) {
      incoming.push_back(centroids_[ci++]);
    } else {
      incoming.push_back(Centroid{buffer_[bi++], 1});
    }
  }
  buffer_.clear();

  uint64_t total = 0;
  for (const Centroid& c : incoming) total += c.weight;

  std::vector<Centroid> merged;
  merged.reserve(static_cast<size_t>(2 * compression_) + 8);
  uint64_t so_far = 0;
  double k_limit = ScaleK(0.0, compression_) + 1.0;
  double q_limit = ScaleQ(k_limit, compression_);
  Centroid open = incoming.front();
  for (size_t i = 1; i < incoming.size(); ++i) {
    const Centroid& next = incoming[i];
    double q_if_merged = static_cast<double>(so_far + open.weight +
                                             next.weight) /
                         static_cast<double>(total);
    if (q_if_merged <= q_limit) {
      // Merge next into the open centroid (weighted mean).
      double w_open = static_cast<double>(open.weight);
      double w_next = static_cast<double>(next.weight);
      open.mean = (open.mean * w_open + next.mean * w_next) / (w_open + w_next);
      open.weight += next.weight;
    } else {
      so_far += open.weight;
      merged.push_back(open);
      k_limit = ScaleK(static_cast<double>(so_far) / static_cast<double>(total),
                       compression_) +
                1.0;
      q_limit = ScaleQ(k_limit, compression_);
      open = next;
    }
  }
  merged.push_back(open);
  centroids_ = std::move(merged);
}

double TDigest::Quantile(double phi) const {
  Flush();
  if (centroids_.empty()) return 0.0;
  phi = std::clamp(phi, 0.0, 1.0);
  if (centroids_.size() == 1) return centroids_[0].mean;

  const double target = phi * static_cast<double>(total_count_);
  double cum = 0.0;
  for (size_t i = 0; i < centroids_.size(); ++i) {
    const double w = static_cast<double>(centroids_[i].weight);
    const double center = cum + w / 2.0;
    if (target <= center || i + 1 == centroids_.size()) {
      if (i == 0 && target < center) {
        // Interpolate between the minimum and the first centroid center.
        double t = center <= 0 ? 0.0 : target / center;
        return min_ + t * (centroids_[0].mean - min_);
      }
      if (i + 1 == centroids_.size() && target > center) {
        double rest = static_cast<double>(total_count_) - center;
        double t = rest <= 0 ? 0.0 : (target - center) / rest;
        return centroids_[i].mean + t * (max_ - centroids_[i].mean);
      }
      // Interpolate between centers of centroid i-1 and i.
      const double prev_w = static_cast<double>(centroids_[i - 1].weight);
      const double prev_center = cum - prev_w / 2.0;
      double span = center - prev_center;
      double t = span <= 0 ? 0.0 : (target - prev_center) / span;
      return centroids_[i - 1].mean +
             t * (centroids_[i].mean - centroids_[i - 1].mean);
    }
    cum += w;
  }
  return centroids_.back().mean;
}

void TDigest::Clear() {
  centroids_.clear();
  buffer_.clear();
  total_count_ = 0;
  min_ = max_ = 0.0;
}

}  // namespace qf
