// Greenwald-Khanna epsilon-approximate quantile summary (SIGMOD 2001).
//
// Single-key streaming quantile sketch: maintains a sorted list of tuples
// (v, g, delta) such that any phi-quantile can be answered within rank error
// eps * n. This is the classic "online insertion + offline query" structure
// the paper contrasts against: queries binary-search the summary and are not
// constant-time. Used directly as a holistic per-key baseline and inside
// SQUAD.

#ifndef QUANTILEFILTER_QUANTILE_GK_H_
#define QUANTILEFILTER_QUANTILE_GK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qf {

class GkSummary {
 public:
  /// `eps` is the target rank-error fraction (e.g. 0.01 keeps rank error
  /// within 1% of the stream length).
  explicit GkSummary(double eps);

  uint64_t count() const { return count_; }
  size_t summary_size() const { return tuples_.size(); }
  size_t MemoryBytes() const;

  void Insert(double value);

  /// Value whose rank is within eps*n of `phi`*n. `phi` in [0, 1].
  /// Returns 0 for an empty summary.
  double Quantile(double phi) const;

  /// Value whose rank is within eps*n of `rank` (0-based). Clamped to the
  /// observed range.
  double ValueAtRank(uint64_t rank) const;

  void Clear();

 private:
  struct Tuple {
    double value;
    uint64_t g;      // rank gap to the previous tuple
    uint64_t delta;  // rank uncertainty of this tuple
  };

  void Compress();

  double eps_;
  uint64_t count_ = 0;
  uint64_t compress_every_;  // insertions between compressions
  uint64_t since_compress_ = 0;
  std::vector<Tuple> tuples_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_QUANTILE_GK_H_
