// Fixed-size reservoir sampler with quantile queries.
//
// The simplest possible quantile "sketch": keep a uniform sample of the
// stream (Vitter's Algorithm R) and answer quantiles from the sorted sample.
// SQUAD-style systems use reservoirs for the keys that are not heavy enough
// to deserve full summaries; it also serves as a floor baseline in the
// per-key detector adapter.

#ifndef QUANTILEFILTER_QUANTILE_RESERVOIR_H_
#define QUANTILEFILTER_QUANTILE_RESERVOIR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace qf {

class ReservoirSampler {
 public:
  explicit ReservoirSampler(size_t capacity, uint64_t seed = 0x4E5E40ULL)
      : capacity_(capacity < 1 ? 1 : capacity), rng_(seed) {
    sample_.reserve(capacity_);
  }

  uint64_t count() const { return count_; }
  size_t sample_size() const { return sample_.size(); }
  size_t MemoryBytes() const {
    return sizeof(*this) + sample_.capacity() * sizeof(double);
  }

  void Insert(double value) {
    ++count_;
    if (sample_.size() < capacity_) {
      sample_.push_back(value);
      sorted_ = false;
      return;
    }
    // Algorithm R: replace a uniformly random slot with probability cap/n.
    uint64_t j = rng_.NextBounded(count_);
    if (j < capacity_) {
      sample_[j] = value;
      sorted_ = false;
    }
  }

  /// Approximate phi-quantile from the sample. Returns 0 when empty.
  double Quantile(double phi) const {
    if (sample_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(sample_.begin(), sample_.end());
      sorted_ = true;
    }
    phi = std::clamp(phi, 0.0, 1.0);
    size_t idx = static_cast<size_t>(phi *
                                     static_cast<double>(sample_.size() - 1));
    return sample_[idx];
  }

  void Clear() {
    sample_.clear();
    count_ = 0;
    sorted_ = false;
  }

 private:
  size_t capacity_;
  Rng rng_;
  mutable std::vector<double> sample_;
  mutable bool sorted_ = false;
  uint64_t count_ = 0;
};

}  // namespace qf

#endif  // QUANTILEFILTER_QUANTILE_RESERVOIR_H_
