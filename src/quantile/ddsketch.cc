#include "quantile/ddsketch.h"

#include <algorithm>
#include <cmath>

namespace qf {

DdSketch::DdSketch(double alpha, size_t max_buckets)
    : alpha_(std::clamp(alpha, 1e-6, 0.5)),
      gamma_((1.0 + alpha_) / (1.0 - alpha_)),
      log_gamma_(std::log(gamma_)),
      max_buckets_(max_buckets < 8 ? 8 : max_buckets) {}

size_t DdSketch::MemoryBytes() const {
  // std::map node: key + count + ~3 pointers + color.
  return sizeof(*this) + buckets_.size() * (sizeof(int) + sizeof(uint64_t) +
                                            4 * sizeof(void*));
}

int DdSketch::BucketIndex(double value) const {
  return static_cast<int>(std::ceil(std::log(value) / log_gamma_));
}

double DdSketch::BucketValue(int index) const {
  // Midpoint estimate: 2 * gamma^i / (gamma + 1).
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void DdSketch::Insert(double value) {
  ++count_;
  if (value <= 0.0) {
    ++zero_count_;
    return;
  }
  ++buckets_[BucketIndex(value)];
  CollapseIfNeeded();
}

void DdSketch::CollapseIfNeeded() {
  while (buckets_.size() > max_buckets_) {
    // Merge the lowest bucket into its successor.
    auto first = buckets_.begin();
    auto second = std::next(first);
    second->second += first->second;
    buckets_.erase(first);
  }
}

double DdSketch::Quantile(double phi) const {
  if (count_ == 0) return 0.0;
  phi = std::clamp(phi, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(phi * static_cast<double>(count_ - 1));
  if (target < zero_count_) return 0.0;
  uint64_t cum = zero_count_;
  for (const auto& [index, bucket_count] : buckets_) {
    cum += bucket_count;
    if (cum > target) return BucketValue(index);
  }
  return buckets_.empty() ? 0.0 : BucketValue(buckets_.rbegin()->first);
}

void DdSketch::Clear() {
  buckets_.clear();
  count_ = 0;
  zero_count_ = 0;
}

}  // namespace qf
