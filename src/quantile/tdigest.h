// Merging t-digest (Dunning & Ertl 2019).
//
// Centroid-based quantile sketch with the k1 (arcsine) scale function, which
// concentrates resolution at the distribution tails — the regime the paper's
// tail-latency use cases live in. Incoming points accumulate in a buffer and
// are periodically merged into the centroid list.

#ifndef QUANTILEFILTER_QUANTILE_TDIGEST_H_
#define QUANTILEFILTER_QUANTILE_TDIGEST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qf {

class TDigest {
 public:
  /// `compression` bounds the number of centroids (~2x compression).
  explicit TDigest(double compression = 100.0);

  uint64_t count() const { return total_count_; }
  size_t MemoryBytes() const;
  size_t centroid_count() const { return centroids_.size(); }

  void Insert(double value, uint64_t weight = 1);

  /// Approximate phi-quantile with linear interpolation between centroids.
  double Quantile(double phi) const;

  void Clear();

 private:
  struct Centroid {
    double mean;
    uint64_t weight;
  };

  void Flush() const;  // merges buffer_ into centroids_ (logically const)
  static double ScaleK(double q, double compression);
  static double ScaleQ(double k, double compression);

  double compression_;
  uint64_t total_count_ = 0;
  mutable std::vector<Centroid> centroids_;  // sorted by mean
  mutable std::vector<double> buffer_;
  mutable double min_ = 0.0;
  mutable double max_ = 0.0;
};

}  // namespace qf

#endif  // QUANTILEFILTER_QUANTILE_TDIGEST_H_
