// SketchPolymer-style baseline (Guo et al., KDD 2023): per-item tail
// quantile estimation with one compact sketch over log-bucketized values.
//
// Reimplemented from the published design, keeping the structural traits the
// QuantileFilter paper measures:
//   * values are mapped to log2 buckets and per-(key, bucket) counts are
//     kept in lightweight count-min rows — so a quantile query must read
//     O(log(value range)) counters, the non-constant "offline query" cost;
//   * the earliest arrivals of each key are consumed by a cold-start
//     admission stage and never recorded (SketchPolymer uses early items to
//     pick its per-key "polymer" stage), which yields the systematic recall
//     ceiling the paper reports even with ample memory;
//   * under tight memory, hash collisions inflate high-bucket counts, the
//     estimated quantile rises, and keys are broadly misreported — the very
//     low precision / high recall regime in Figs 4-5.

#ifndef QUANTILEFILTER_BASELINE_SKETCH_POLYMER_H_
#define QUANTILEFILTER_BASELINE_SKETCH_POLYMER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/criteria.h"
#include "sketch/count_min_sketch.h"

namespace qf {

class SketchPolymer {
 public:
  struct Options {
    size_t memory_bytes = 1 << 20;
    /// Number of log2 value buckets ("tower" height).
    int value_levels = 24;
    int depth = 2;
    /// Occurrences of a key consumed by the cold-start stage before values
    /// start being recorded.
    uint32_t warmup = 8;
    uint64_t seed = 0x5CFE;
  };

  SketchPolymer(const Options& options, const Criteria& criteria);

  const Criteria& criteria() const { return criteria_; }
  size_t MemoryBytes() const;

  /// Insert + immediate quantile query against T. Returns true iff `key` is
  /// reported.
  bool Insert(uint64_t key, double value);

  /// Estimated (eps, delta)-quantile of `key` from the level counts
  /// (lower edge of the quantile's bucket).
  double QueryQuantile(uint64_t key) const;

  void Reset();

 private:
  int LevelOf(double value) const;
  double LevelLowerEdge(int level) const;
  /// Per-level estimated counts for `key`; returns the total.
  uint64_t LevelCounts(uint64_t key, std::vector<int64_t>* counts) const;

  Options options_;
  Criteria criteria_;
  CountMinSketch<int32_t> warmup_counts_;
  std::vector<CountMinSketch<int32_t>> levels_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_BASELINE_SKETCH_POLYMER_H_
