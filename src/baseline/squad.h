// SQUAD-style baseline (Shahout, Friedman, Ben Basat, SIGMOD 2023):
// heavy-hitter-guided per-key quantile estimation.
//
// Reimplemented from the published design: a SpaceSaving table identifies
// the heavy keys, and each tracked key carries its own GK quantile summary;
// keys below the heavy-hitter bar share a small array of hash-indexed
// background reservoirs (SQUAD keeps coarse shared state for the tail).
// Detection follows the paper's "online insertion + offline query" pattern
// the QuantileFilter paper criticizes: after every insertion the key's
// summary is queried (a non-constant-time scan/binary search over the GK
// tuples) and the (eps, delta)-quantile is compared against T. Untracked
// keys can only be judged through their shared background reservoir, whose
// cross-key mixing makes per-key detection unreliable — the source of
// SQUAD's low recall at small memory, converging to near-exact behaviour
// once the table covers all reportable keys.

#ifndef QUANTILEFILTER_BASELINE_SQUAD_H_
#define QUANTILEFILTER_BASELINE_SQUAD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/criteria.h"
#include "quantile/gk.h"
#include "quantile/reservoir.h"
#include "sketch/space_saving.h"

namespace qf {

class Squad {
 public:
  struct Options {
    size_t memory_bytes = 1 << 20;
    /// Estimated bytes per tracked key (SpaceSaving entry + GK summary);
    /// determines how many keys the budget can track.
    size_t bytes_per_key = 640;
    /// GK rank-error parameter for per-key summaries.
    double gk_eps = 0.01;
    /// Shared background reservoirs for the untracked tail: count and
    /// per-reservoir sample capacity. Queries for unknown keys fall back to
    /// the reservoir their hash selects (coarse, cross-key state — usable
    /// for quantile queries, too unattributable for reporting).
    size_t background_reservoirs = 16;
    size_t background_capacity = 256;
    uint64_t seed = 0x50AD;
  };

  Squad(const Options& options, const Criteria& criteria);

  const Criteria& criteria() const { return criteria_; }
  size_t tracked_keys() const { return summaries_.size(); }
  size_t MemoryBytes() const;

  /// Insert + immediate offline-style query, per the SOTA usage pattern the
  /// paper benchmarks. Returns true iff `key` is reported.
  bool Insert(uint64_t key, double value);

  /// Estimated (eps, delta)-quantile of `key`: the per-key GK answer when
  /// tracked; otherwise the coarse background-reservoir answer at the plain
  /// delta rank (or -inf if that reservoir is empty).
  double QueryQuantile(uint64_t key) const;

  void Reset();

 private:
  Options options_;
  Criteria criteria_;
  SpaceSaving heavy_;
  std::unordered_map<uint64_t, std::unique_ptr<GkSummary>> summaries_;
  std::vector<ReservoirSampler> background_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_BASELINE_SQUAD_H_
