// Holistic per-key baselines (Sec I / II-B): "set up a separate unit for
// every possible incoming key".
//
// A generic adapter that gives each distinct key its own single-key quantile
// sketch (GK, KLL, t-digest or DDSketch) and applies Definition 4 after each
// insertion. Faithful to how holistic schemes must be deployed for this
// problem — and therefore memory-unbounded in the key cardinality, which is
// exactly the "intolerable storage demands" drawback the paper cites.

#ifndef QUANTILEFILTER_BASELINE_PER_KEY_DETECTOR_H_
#define QUANTILEFILTER_BASELINE_PER_KEY_DETECTOR_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>

#include "core/criteria.h"
#include "quantile/ddsketch.h"
#include "quantile/gk.h"
#include "quantile/kll.h"
#include "quantile/qdigest.h"
#include "quantile/reservoir.h"
#include "quantile/tdigest.h"

namespace qf {

/// `SketchT` must provide Insert(double), Quantile(double phi), count(),
/// MemoryBytes() and Clear(). `FactoryT` is a callable returning a fresh
/// SketchT for a new key.
template <typename SketchT, typename FactoryT>
class PerKeyDetector {
 public:
  PerKeyDetector(FactoryT factory, const Criteria& criteria)
      : factory_(std::move(factory)), criteria_(criteria) {}

  const Criteria& criteria() const { return criteria_; }
  size_t tracked_keys() const { return sketches_.size(); }

  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const auto& [key, sketch] : sketches_) {
      bytes += sketch.MemoryBytes() + sizeof(key) + 2 * sizeof(void*);
    }
    return bytes;
  }

  /// Insert + immediate offline-style query. Returns true iff reported.
  bool Insert(uint64_t key, double value) {
    auto it = sketches_.find(key);
    if (it == sketches_.end()) {
      it = sketches_.emplace(key, factory_()).first;
    }
    SketchT& sketch = it->second;
    sketch.Insert(value);

    const double n = static_cast<double>(sketch.count());
    const double idx = criteria_.delta() * n - criteria_.eps();
    if (idx < 0.0) return false;
    const double q = sketch.Quantile(idx / n);
    if (q > criteria_.threshold()) {
      sketch.Clear();  // reset V_x
      return true;
    }
    return false;
  }

  /// Estimated (eps, delta)-quantile of `key`.
  double QueryQuantile(uint64_t key) const {
    auto it = sketches_.find(key);
    if (it == sketches_.end() || it->second.count() == 0) {
      return -std::numeric_limits<double>::infinity();
    }
    const double n = static_cast<double>(it->second.count());
    const double idx = criteria_.delta() * n - criteria_.eps();
    if (idx < 0.0) return -std::numeric_limits<double>::infinity();
    return it->second.Quantile(idx / n);
  }

  void Reset() { sketches_.clear(); }

 private:
  FactoryT factory_;
  Criteria criteria_;
  std::unordered_map<uint64_t, SketchT> sketches_;
};

/// Convenience constructors for the four supported engines.
inline auto MakePerKeyGk(double gk_eps, const Criteria& criteria) {
  auto factory = [gk_eps] { return GkSummary(gk_eps); };
  return PerKeyDetector<GkSummary, decltype(factory)>(factory, criteria);
}

inline auto MakePerKeyKll(int k, const Criteria& criteria) {
  auto factory = [k] { return KllSketch(k); };
  return PerKeyDetector<KllSketch, decltype(factory)>(factory, criteria);
}

inline auto MakePerKeyTDigest(double compression, const Criteria& criteria) {
  auto factory = [compression] { return TDigest(compression); };
  return PerKeyDetector<TDigest, decltype(factory)>(factory, criteria);
}

inline auto MakePerKeyDdSketch(double alpha, const Criteria& criteria) {
  auto factory = [alpha] { return DdSketch(alpha); };
  return PerKeyDetector<DdSketch, decltype(factory)>(factory, criteria);
}

inline auto MakePerKeyQDigest(int k, int log_universe,
                              const Criteria& criteria) {
  auto factory = [k, log_universe] { return QDigest(k, log_universe); };
  return PerKeyDetector<QDigest, decltype(factory)>(factory, criteria);
}

inline auto MakePerKeyReservoir(size_t capacity, const Criteria& criteria) {
  auto factory = [capacity] { return ReservoirSampler(capacity); };
  return PerKeyDetector<ReservoirSampler, decltype(factory)>(factory,
                                                             criteria);
}

}  // namespace qf

#endif  // QUANTILEFILTER_BASELINE_PER_KEY_DETECTOR_H_
