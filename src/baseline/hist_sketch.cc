#include "baseline/hist_sketch.h"

#include <cmath>
#include <limits>

namespace qf {

HistSketch::HistSketch(const Options& options, const Criteria& criteria)
    : options_(options), criteria_(criteria) {
  if (options_.value_levels < 2) options_.value_levels = 2;
}

size_t HistSketch::MemoryBytes() const {
  // Node key + count + bucket array + hash-map pointers, per tracked key.
  const size_t per_key = sizeof(uint64_t) + sizeof(Histogram) +
                         static_cast<size_t>(options_.value_levels) *
                             sizeof(uint32_t) +
                         2 * sizeof(void*);
  return histograms_.size() * per_key;
}

int HistSketch::LevelOf(double value) const {
  if (value < 1.0) return 0;
  int level = static_cast<int>(std::floor(std::log2(value)));
  if (level >= options_.value_levels) level = options_.value_levels - 1;
  return level;
}

bool HistSketch::Insert(uint64_t key, double value) {
  Histogram& hist = histograms_[key];
  if (hist.buckets.empty()) {
    hist.buckets.assign(static_cast<size_t>(options_.value_levels), 0);
  }
  ++hist.buckets[LevelOf(value)];
  ++hist.count;

  const double idx =
      criteria_.delta() * static_cast<double>(hist.count) - criteria_.eps();
  if (idx < 0.0) return false;
  const uint64_t target = static_cast<uint64_t>(idx);

  uint64_t cum = 0;
  for (int l = 0; l < options_.value_levels; ++l) {
    cum += hist.buckets[l];
    if (cum > target) {
      if (std::pow(2.0, l) > criteria_.threshold()) {
        hist.buckets.assign(hist.buckets.size(), 0);  // reset V_x
        hist.count = 0;
        return true;
      }
      return false;
    }
  }
  return false;
}

double HistSketch::QueryQuantile(uint64_t key) const {
  auto it = histograms_.find(key);
  if (it == histograms_.end() || it->second.count == 0) {
    return -std::numeric_limits<double>::infinity();
  }
  const Histogram& hist = it->second;
  const double idx =
      criteria_.delta() * static_cast<double>(hist.count) - criteria_.eps();
  if (idx < 0.0) return -std::numeric_limits<double>::infinity();
  const uint64_t target = static_cast<uint64_t>(idx);
  uint64_t cum = 0;
  for (int l = 0; l < options_.value_levels; ++l) {
    cum += hist.buckets[l];
    if (cum > target) return std::pow(2.0, l);
  }
  return -std::numeric_limits<double>::infinity();
}

void HistSketch::Reset() { histograms_.clear(); }

}  // namespace qf
