// Zero-error sliding-window detector (extension).
//
// The ideal semantics that both WindowedQuantileFilter (hard epochs) and
// RotatingQuantileFilter (two staggered filters) approximate: Definition 4
// evaluated over each key's values from the last `window_items` stream
// positions only. Exact but memory-unbounded (per-key value timelines), so
// it serves as ground truth when evaluating the window wrappers, not as a
// deployable detector.

#ifndef QUANTILEFILTER_BASELINE_SLIDING_EXACT_DETECTOR_H_
#define QUANTILEFILTER_BASELINE_SLIDING_EXACT_DETECTOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "core/criteria.h"
#include "core/qweight.h"

namespace qf {

class SlidingExactDetector {
 public:
  /// `window_items`: stream-position horizon; a value older than
  /// `window_items` insertions (across all keys) leaves its key's V_x.
  /// 0 disables expiry (degenerates to ExactDetector semantics).
  SlidingExactDetector(const Criteria& criteria, uint64_t window_items)
      : criteria_(criteria), window_items_(window_items) {}

  const Criteria& criteria() const { return criteria_; }
  uint64_t items_seen() const { return now_; }

  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const auto& [key, state] : keys_) {
      bytes += sizeof(key) + sizeof(state) +
               state.events.size() * sizeof(Event) + 2 * sizeof(void*);
    }
    return bytes;
  }

  /// Definition 4 over the windowed V_x: expire old values, admit the new
  /// one, report + clear the key's window when the (eps, delta)-quantile of
  /// the surviving values exceeds T.
  bool Insert(uint64_t key, double value) {
    const uint64_t index = now_++;
    KeyState& state = keys_[key];
    Expire(&state, index);

    const bool abnormal = criteria_.ValueIsAbnormal(value);
    state.events.push_back(Event{index, abnormal});
    (abnormal ? state.above : state.below) += 1;

    if (QuantileOutstanding(state.below, state.above, criteria_)) {
      state.events.clear();
      state.below = state.above = 0;
      return true;
    }
    return false;
  }

  /// Exact windowed Qweight of `key` as of the last insertion.
  double Qweight(uint64_t key) const {
    auto it = keys_.find(key);
    if (it == keys_.end()) return 0.0;
    // Count only the still-live events (const view: no pruning).
    uint64_t below = 0, above = 0;
    for (const Event& e : it->second.events) {
      if (!Expired(e.index)) (e.abnormal ? above : below) += 1;
    }
    return ExactQweight(below, above, criteria_);
  }

  void Delete(uint64_t key) { keys_.erase(key); }

  void Reset() {
    keys_.clear();
    now_ = 0;
  }

 private:
  struct Event {
    uint64_t index;
    bool abnormal;
  };
  struct KeyState {
    std::deque<Event> events;
    uint64_t below = 0;
    uint64_t above = 0;
  };

  bool Expired(uint64_t event_index) const {
    return window_items_ > 0 && now_ > window_items_ &&
           event_index < now_ - window_items_;
  }

  void Expire(KeyState* state, uint64_t now) {
    if (window_items_ == 0) return;
    while (!state->events.empty() &&
           now >= window_items_ &&
           state->events.front().index < now - window_items_) {
      (state->events.front().abnormal ? state->above : state->below) -= 1;
      state->events.pop_front();
    }
  }

  Criteria criteria_;
  uint64_t window_items_;
  uint64_t now_ = 0;
  std::unordered_map<uint64_t, KeyState> keys_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_BASELINE_SLIDING_EXACT_DETECTOR_H_
