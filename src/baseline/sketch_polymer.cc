#include "baseline/sketch_polymer.h"

#include <cmath>
#include <limits>

#include "common/hash.h"

namespace qf {

namespace {
constexpr double kWarmupShare = 0.2;  // budget share for the cold-start stage
}  // namespace

SketchPolymer::SketchPolymer(const Options& options, const Criteria& criteria)
    : options_(options),
      criteria_(criteria),
      warmup_counts_(CountMinSketch<int32_t>::FromBytes(
          static_cast<size_t>(kWarmupShare *
                              static_cast<double>(options.memory_bytes)),
          options.depth, Mix64(options.seed ^ 0xAAAAULL))) {
  const size_t per_level =
      static_cast<size_t>((1.0 - kWarmupShare) *
                          static_cast<double>(options.memory_bytes)) /
      static_cast<size_t>(options.value_levels < 1 ? 1 : options.value_levels);
  levels_.reserve(options.value_levels);
  for (int l = 0; l < options.value_levels; ++l) {
    levels_.push_back(CountMinSketch<int32_t>::FromBytes(
        per_level < 64 ? 64 : per_level, options.depth,
        Mix64(options.seed + 31 * l)));
  }
}

size_t SketchPolymer::MemoryBytes() const {
  size_t bytes = warmup_counts_.MemoryBytes();
  for (const auto& level : levels_) bytes += level.MemoryBytes();
  return bytes;
}

int SketchPolymer::LevelOf(double value) const {
  if (value < 1.0) return 0;
  int level = static_cast<int>(std::floor(std::log2(value)));
  if (level >= options_.value_levels) level = options_.value_levels - 1;
  return level;
}

double SketchPolymer::LevelLowerEdge(int level) const {
  return std::pow(2.0, level);
}

bool SketchPolymer::Insert(uint64_t key, double value) {
  // Cold-start stage: the first `warmup` occurrences select the polymer
  // stage and their values are not recorded.
  if (warmup_counts_.Estimate(key) <
      static_cast<int64_t>(options_.warmup)) {
    warmup_counts_.Add(key, 1);
    return false;
  }

  levels_[LevelOf(value)].Add(key, 1);

  // Offline-style query: read all level counters for this key.
  std::vector<int64_t> counts;
  const uint64_t n = LevelCounts(key, &counts);
  if (n == 0) return false;
  const double idx =
      criteria_.delta() * static_cast<double>(n) - criteria_.eps();
  if (idx < 0.0) return false;
  const uint64_t target = static_cast<uint64_t>(idx);

  uint64_t cum = 0;
  for (int l = 0; l < options_.value_levels; ++l) {
    cum += static_cast<uint64_t>(counts[l]);
    if (cum > target) {
      if (LevelLowerEdge(l) > criteria_.threshold()) {
        // Report and reset: subtract the estimated level counts (an
        // estimate-based reset, with the same error source as the naive
        // dual-sketch solution).
        for (int j = 0; j < options_.value_levels; ++j) {
          if (counts[j] > 0) levels_[j].Subtract(key, counts[j]);
        }
        return true;
      }
      return false;
    }
  }
  return false;
}

uint64_t SketchPolymer::LevelCounts(uint64_t key,
                                    std::vector<int64_t>* counts) const {
  counts->resize(options_.value_levels);
  uint64_t total = 0;
  for (int l = 0; l < options_.value_levels; ++l) {
    int64_t c = levels_[l].Estimate(key);
    if (c < 0) c = 0;
    (*counts)[l] = c;
    total += static_cast<uint64_t>(c);
  }
  return total;
}

double SketchPolymer::QueryQuantile(uint64_t key) const {
  std::vector<int64_t> counts;
  const uint64_t n = LevelCounts(key, &counts);
  if (n == 0) return -std::numeric_limits<double>::infinity();
  const double idx =
      criteria_.delta() * static_cast<double>(n) - criteria_.eps();
  if (idx < 0.0) return -std::numeric_limits<double>::infinity();
  const uint64_t target = static_cast<uint64_t>(idx);
  uint64_t cum = 0;
  for (int l = 0; l < options_.value_levels; ++l) {
    cum += static_cast<uint64_t>(counts[l]);
    if (cum > target) return LevelLowerEdge(l);
  }
  return -std::numeric_limits<double>::infinity();
}

void SketchPolymer::Reset() {
  warmup_counts_.Clear();
  for (auto& level : levels_) level.Clear();
}

}  // namespace qf
