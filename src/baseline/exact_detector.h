// Zero-error reference detector for Definition 4.
//
// Because the outstanding test q_{eps,delta} > T reduces to the count-domain
// condition n_below <= delta*n - eps (see core/qweight.h), exact detection
// needs only two integers per key. This oracle defines ground truth for
// every accuracy experiment, and is itself a usable (if memory-unbounded)
// detector.

#ifndef QUANTILEFILTER_BASELINE_EXACT_DETECTOR_H_
#define QUANTILEFILTER_BASELINE_EXACT_DETECTOR_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "core/criteria.h"
#include "core/qweight.h"
#include "stream/item.h"

namespace qf {

class ExactDetector {
 public:
  explicit ExactDetector(const Criteria& criteria) : criteria_(criteria) {}

  const Criteria& criteria() const { return criteria_; }

  /// Memory actually consumed (grows with distinct keys; the oracle is not
  /// space-bounded).
  size_t MemoryBytes() const {
    return counts_.size() *
           (sizeof(uint64_t) + sizeof(Counts) + 2 * sizeof(void*));
  }

  /// Processes one item with exact Definition-4 semantics: the value joins
  /// V_x; if the (eps, delta)-quantile of the updated V_x exceeds T the key
  /// is reported and V_x is reset to empty.
  bool Insert(uint64_t key, double value) {
    return Insert(key, value, criteria_);
  }

  bool Insert(uint64_t key, double value, const Criteria& criteria) {
    Counts& c = counts_[key];
    if (criteria.ValueIsAbnormal(value)) {
      ++c.above;
    } else {
      ++c.below;
    }
    if (QuantileOutstanding(c.below, c.above, criteria)) {
      c = Counts{};  // reset V_x
      return true;
    }
    return false;
  }

  /// Current exact Qweight of `key`.
  double Qweight(uint64_t key) const {
    auto it = counts_.find(key);
    if (it == counts_.end()) return 0.0;
    return ExactQweight(it->second.below, it->second.above, criteria_);
  }

  /// Forgets `key` entirely.
  void Delete(uint64_t key) { counts_.erase(key); }

  void Reset() { counts_.clear(); }

 private:
  struct Counts {
    uint64_t below = 0;
    uint64_t above = 0;
  };

  Criteria criteria_;
  std::unordered_map<uint64_t, Counts> counts_;
};

/// Streams `trace` through an ExactDetector and returns the set of keys that
/// are ever reported — the ground-truth outstanding-key set used by every
/// accuracy metric in the evaluation.
std::unordered_set<uint64_t> TrueOutstandingKeys(const Trace& trace,
                                                 const Criteria& criteria);

}  // namespace qf

#endif  // QUANTILEFILTER_BASELINE_EXACT_DETECTOR_H_
