// HistSketch-style baseline (He, Zhu, Huang, ICDE 2023): per-key
// distribution monitoring with histograms.
//
// Reimplemented from the published design at the granularity the
// QuantileFilter paper measures: every distinct key owns a compact
// log-bucket histogram, kept exactly in a hash table. Two structural traits
// matter for the comparison and are reproduced here:
//   * space grows with key cardinality regardless of configuration — on a
//     high-cardinality ("Cloud") stream the footprint balloons (the paper
//     observes ~1GB irrespective of parameters). MemoryBytes() reports the
//     true usage; the construction budget only sizes the per-key histogram.
//   * answering a quantile means scanning histogram buckets after each
//     insertion — again a non-constant query on the critical path.

#ifndef QUANTILEFILTER_BASELINE_HIST_SKETCH_H_
#define QUANTILEFILTER_BASELINE_HIST_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/criteria.h"

namespace qf {

class HistSketch {
 public:
  struct Options {
    /// Nominal budget, accepted for interface parity with the bounded
    /// detectors but deliberately not enforced: HistSketch's design cannot
    /// bound its total memory (see header comment). MemoryBytes() reports
    /// the real usage.
    size_t memory_bytes = 1 << 20;
    int value_levels = 24;  // log2 histogram buckets per key
    uint64_t seed = 0x4157;
  };

  HistSketch(const Options& options, const Criteria& criteria);

  const Criteria& criteria() const { return criteria_; }
  size_t tracked_keys() const { return histograms_.size(); }
  size_t MemoryBytes() const;

  /// Insert + immediate quantile query against T. Returns true iff `key` is
  /// reported (its histogram is then reset).
  bool Insert(uint64_t key, double value);

  /// Estimated (eps, delta)-quantile of `key` (lower edge of its bucket).
  double QueryQuantile(uint64_t key) const;

  void Reset();

 private:
  struct Histogram {
    std::vector<uint32_t> buckets;
    uint64_t count = 0;
  };

  int LevelOf(double value) const;

  Options options_;
  Criteria criteria_;
  std::unordered_map<uint64_t, Histogram> histograms_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_BASELINE_HIST_SKETCH_H_
