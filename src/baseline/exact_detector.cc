#include "baseline/exact_detector.h"

namespace qf {

std::unordered_set<uint64_t> TrueOutstandingKeys(const Trace& trace,
                                                 const Criteria& criteria) {
  ExactDetector oracle(criteria);
  std::unordered_set<uint64_t> outstanding;
  for (const Item& item : trace) {
    if (oracle.Insert(item.key, item.value)) outstanding.insert(item.key);
  }
  return outstanding;
}

}  // namespace qf
