#include "baseline/squad.h"

#include <cmath>
#include <limits>

#include "common/hash.h"
#include "core/qweight.h"

namespace qf {

namespace {

size_t CapacityFor(const Squad::Options& options) {
  size_t cap = options.memory_bytes / options.bytes_per_key;
  return cap < 4 ? 4 : cap;
}

}  // namespace

Squad::Squad(const Options& options, const Criteria& criteria)
    : options_(options), criteria_(criteria), heavy_(CapacityFor(options)) {
  summaries_.reserve(heavy_.capacity());
  size_t reservoirs =
      options.background_reservoirs < 1 ? 1 : options.background_reservoirs;
  background_.reserve(reservoirs);
  for (size_t i = 0; i < reservoirs; ++i) {
    background_.emplace_back(options.background_capacity,
                             Mix64(options.seed + i));
  }
}

size_t Squad::MemoryBytes() const {
  size_t bytes = heavy_.MemoryBytes();
  for (const auto& [key, summary] : summaries_) {
    bytes += summary->MemoryBytes() + sizeof(key) + 2 * sizeof(void*);
  }
  for (const auto& reservoir : background_) bytes += reservoir.MemoryBytes();
  return bytes;
}

bool Squad::Insert(uint64_t key, double value) {
  // Background tail state: every value also feeds the shared reservoir its
  // key hashes to, so untracked keys stay queryable (coarsely).
  background_[HashKey(key, options_.seed) % background_.size()].Insert(value);

  uint64_t evicted = heavy_.Add(key);
  if (evicted != 0) summaries_.erase(evicted);

  auto it = summaries_.find(key);
  if (it == summaries_.end()) {
    if (!heavy_.Lookup(key, nullptr)) return false;  // not admitted
    it = summaries_.emplace(key, std::make_unique<GkSummary>(options_.gk_eps))
             .first;
  }
  GkSummary& summary = *it->second;
  summary.Insert(value);

  // Offline-style query after the insertion: locate the (eps, delta) rank in
  // the per-key summary and compare against T.
  const uint64_t n = summary.count();
  const double idx =
      criteria_.delta() * static_cast<double>(n) - criteria_.eps();
  if (idx < 0.0) return false;
  const double q = summary.ValueAtRank(static_cast<uint64_t>(idx));
  if (q > criteria_.threshold()) {
    summary.Clear();  // reset V_x after the report
    return true;
  }
  return false;
}

double Squad::QueryQuantile(uint64_t key) const {
  auto it = summaries_.find(key);
  if (it == summaries_.end() || it->second->count() == 0) {
    // Untracked key: answer from the shared background reservoir — coarse
    // cross-key state, at the plain delta rank (no per-key eps offset is
    // meaningful for mixed samples).
    const ReservoirSampler& reservoir =
        background_[HashKey(key, options_.seed) % background_.size()];
    if (reservoir.count() == 0) {
      return -std::numeric_limits<double>::infinity();
    }
    return reservoir.Quantile(criteria_.delta());
  }
  const uint64_t n = it->second->count();
  const double idx =
      criteria_.delta() * static_cast<double>(n) - criteria_.eps();
  if (idx < 0.0) return -std::numeric_limits<double>::infinity();
  return it->second->ValueAtRank(static_cast<uint64_t>(idx));
}

void Squad::Reset() {
  heavy_.Clear();
  summaries_.clear();
  for (auto& reservoir : background_) reservoir.Clear();
}

}  // namespace qf
