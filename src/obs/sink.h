// MetricsSink: periodic snapshot export that external tools poll.
//
// A sink owns a background thread that snapshots a MetricsRegistry every
// `interval_ms` and
//   * appends one JSON line per snapshot to `jsonl_path` (the stream
//     tools/qf_top tails), and
//   * atomically rewrites `prom_path` with Prometheus text exposition
//     (write to `<path>.tmp`, rename), so a scraper never reads a torn
//     file.
// Either path may be empty to disable that format. WriteOnce() is the
// synchronous single-shot used by benches for their final snapshot.

#ifndef QUANTILEFILTER_OBS_SINK_H_
#define QUANTILEFILTER_OBS_SINK_H_

#include <atomic>
#include <string>
#include <thread>

#include "obs/registry.h"

namespace qf::obs {

class MetricsSink {
 public:
  struct Options {
    std::string jsonl_path;  // appended, one JSON object per line
    std::string prom_path;   // atomically rewritten each tick
    int interval_ms = 1000;
  };

  MetricsSink(MetricsRegistry& registry, Options options)
      : registry_(&registry), options_(std::move(options)) {}
  ~MetricsSink() { Stop(); }

  MetricsSink(const MetricsSink&) = delete;
  MetricsSink& operator=(const MetricsSink&) = delete;

  /// Snapshots and writes both outputs now. Returns false if any configured
  /// path could not be written.
  bool WriteOnce();

  /// Starts the periodic writer thread. Idempotent.
  void Start();

  /// Writes one final snapshot and joins the writer. Idempotent.
  void Stop();

 private:
  void Loop();

  MetricsRegistry* registry_;
  Options options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
};

}  // namespace qf::obs

#endif  // QUANTILEFILTER_OBS_SINK_H_
