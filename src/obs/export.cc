#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qf::obs {
namespace {

/// Appends printf-formatted text to `out`.
void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

/// Escapes a string for a JSON or Prometheus HELP context.
std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

/// Formats a label body plus extra labels into `{...}` (or "" when empty).
std::string LabelBlock(const std::string& body, const std::string& extra) {
  if (body.empty() && extra.empty()) return "";
  std::string out = "{";
  out += body;
  if (!body.empty() && !extra.empty()) out += ",";
  out += extra;
  out += "}";
  return out;
}

const char* QuantileLabel(double q) {
  if (q == 0.5) return "0.5";
  if (q == 0.9) return "0.9";
  if (q == 0.99) return "0.99";
  if (q == 0.999) return "0.999";
  return "1";
}

}  // namespace

ParsedName SplitMetricName(std::string_view name) {
  ParsedName out;
  const size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    out.base = std::string(name);
    return out;
  }
  out.base = std::string(name.substr(0, brace));
  std::string_view rest = name.substr(brace + 1);
  if (!rest.empty() && rest.back() == '}') rest.remove_suffix(1);
  out.labels = std::string(rest);
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);

  auto emit_header = [&out](std::string* last_base, const std::string& base,
                            const std::string& help, const char* type) {
    if (*last_base == base) return;
    *last_base = base;
    if (!help.empty()) {
      Appendf(&out, "# HELP %s %s\n", base.c_str(), Escape(help).c_str());
    }
    Appendf(&out, "# TYPE %s %s\n", base.c_str(), type);
  };

  std::string last_base;
  for (const CounterSample& c : snapshot.counters) {
    const ParsedName n = SplitMetricName(c.name);
    emit_header(&last_base, n.base, c.help, "counter");
    Appendf(&out, "%s%s %" PRIu64 "\n", n.base.c_str(),
            LabelBlock(n.labels, "").c_str(), c.value);
  }
  last_base.clear();
  for (const GaugeSample& g : snapshot.gauges) {
    const ParsedName n = SplitMetricName(g.name);
    emit_header(&last_base, n.base, g.help, "gauge");
    Appendf(&out, "%s%s %" PRId64 "\n", n.base.c_str(),
            LabelBlock(n.labels, "").c_str(), g.value);
  }
  // Histograms export as summaries. Samples sharing a base name (per-shard
  // label variants) must be contiguous under one TYPE header, so sort a
  // view by base first.
  std::vector<const HistogramSample*> hists;
  hists.reserve(snapshot.histograms.size());
  for (const HistogramSample& h : snapshot.histograms) hists.push_back(&h);
  std::stable_sort(hists.begin(), hists.end(),
                   [](const HistogramSample* a, const HistogramSample* b) {
                     return SplitMetricName(a->name).base <
                            SplitMetricName(b->name).base;
                   });
  last_base.clear();
  for (const HistogramSample* h : hists) {
    const ParsedName n = SplitMetricName(h->name);
    emit_header(&last_base, n.base, h->help, "summary");
    for (double q : kExportQuantiles) {
      std::string extra = "quantile=\"";
      extra += QuantileLabel(q);
      extra += "\"";
      Appendf(&out, "%s%s %" PRIu64 "\n", n.base.c_str(),
              LabelBlock(n.labels, extra).c_str(), h->data.Quantile(q));
    }
    Appendf(&out, "%s_sum%s %" PRIu64 "\n", n.base.c_str(),
            LabelBlock(n.labels, "").c_str(), h->data.sum());
    Appendf(&out, "%s_count%s %" PRIu64 "\n", n.base.c_str(),
            LabelBlock(n.labels, "").c_str(), h->data.count());
  }
  return out;
}

std::string RenderJsonLine(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(2048);
  Appendf(&out, "{\"ts_ns\":%" PRIu64 ",\"mono_ns\":%" PRIu64, snapshot.wall_ns,
          snapshot.mono_ns);
  out += ",\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    Appendf(&out, "%s\"%s\":%" PRIu64, i == 0 ? "" : ",",
            Escape(c.name).c_str(), c.value);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    Appendf(&out, "%s\"%s\":%" PRId64, i == 0 ? "" : ",",
            Escape(g.name).c_str(), g.value);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    Appendf(&out, "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"max\":%" PRIu64 ",\"mean\":%.3f",
            i == 0 ? "" : ",", Escape(h.name).c_str(), h.data.count(),
            h.data.sum(), h.data.max(), h.data.Mean());
    for (double q : kExportQuantiles) {
      Appendf(&out, ",\"p%s\":%" PRIu64, QuantileLabel(q),
              h.data.Quantile(q));
    }
    out += "}";
  }
  out += "}}\n";
  return out;
}

// ---------------------------------------------------------------------------
// JSON parser.

namespace {

struct JsonCursor {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }
  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool Peek(char* c) {
    SkipWs();
    if (pos >= text.size()) return false;
    *c = text[pos];
    return true;
  }
  bool Consume(char expected) {
    SkipWs();
    if (pos >= text.size() || text[pos] != expected) {
      return Fail(std::string("expected '") + expected + "'");
    }
    ++pos;
    return true;
  }
};

bool ParseValue(JsonCursor* cur, JsonValue* out, int depth);

bool ParseString(JsonCursor* cur, std::string* out) {
  if (!cur->Consume('"')) return false;
  out->clear();
  while (cur->pos < cur->text.size()) {
    char c = cur->text[cur->pos++];
    if (c == '"') return true;
    if (c == '\\') {
      if (cur->pos >= cur->text.size()) return cur->Fail("bad escape");
      char e = cur->text[cur->pos++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (cur->pos + 4 > cur->text.size()) return cur->Fail("bad \\u");
          // Pass the raw escape through; the tools never emit non-ASCII.
          out->append("\\u");
          out->append(cur->text.substr(cur->pos, 4));
          cur->pos += 4;
          break;
        }
        default: return cur->Fail("bad escape");
      }
    } else {
      out->push_back(c);
    }
  }
  return cur->Fail("unterminated string");
}

bool ParseNumber(JsonCursor* cur, JsonValue* out) {
  const size_t start = cur->pos;
  while (cur->pos < cur->text.size() &&
         (std::isdigit(static_cast<unsigned char>(cur->text[cur->pos])) ||
          std::strchr("+-.eE", cur->text[cur->pos]) != nullptr)) {
    ++cur->pos;
  }
  const std::string token(cur->text.substr(start, cur->pos - start));
  char* end = nullptr;
  out->number = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') return cur->Fail("bad number");
  out->kind = JsonValue::Kind::kNumber;
  return true;
}

bool ParseLiteral(JsonCursor* cur, const char* lit) {
  const size_t n = std::strlen(lit);
  if (cur->text.substr(cur->pos, n) != lit) return cur->Fail("bad literal");
  cur->pos += n;
  return true;
}

bool ParseValue(JsonCursor* cur, JsonValue* out, int depth) {
  if (depth > 32) return cur->Fail("nesting too deep");
  char c;
  if (!cur->Peek(&c)) return cur->Fail("unexpected end of input");
  switch (c) {
    case '{': {
      cur->Consume('{');
      out->kind = JsonValue::Kind::kObject;
      char next;
      if (cur->Peek(&next) && next == '}') return cur->Consume('}');
      for (;;) {
        std::string key;
        if (!ParseString(cur, &key)) return false;
        if (!cur->Consume(':')) return false;
        auto value = std::make_unique<JsonValue>();
        if (!ParseValue(cur, value.get(), depth + 1)) return false;
        out->object[key] = std::move(value);
        if (!cur->Peek(&next)) return cur->Fail("unterminated object");
        if (next == ',') {
          cur->Consume(',');
          continue;
        }
        return cur->Consume('}');
      }
    }
    case '[': {
      cur->Consume('[');
      out->kind = JsonValue::Kind::kArray;
      char next;
      if (cur->Peek(&next) && next == ']') return cur->Consume(']');
      for (;;) {
        auto value = std::make_unique<JsonValue>();
        if (!ParseValue(cur, value.get(), depth + 1)) return false;
        out->array.push_back(std::move(value));
        if (!cur->Peek(&next)) return cur->Fail("unterminated array");
        if (next == ',') {
          cur->Consume(',');
          continue;
        }
        return cur->Consume(']');
      }
    }
    case '"':
      out->kind = JsonValue::Kind::kString;
      return ParseString(cur, &out->string);
    case 't':
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return ParseLiteral(cur, "true");
    case 'f':
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return ParseLiteral(cur, "false");
    case 'n':
      out->kind = JsonValue::Kind::kNull;
      return ParseLiteral(cur, "null");
    default:
      return ParseNumber(cur, out);
  }
}

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  JsonCursor cur{text};
  if (!ParseValue(&cur, out, 0)) {
    if (error != nullptr) *error = cur.error;
    return false;
  }
  cur.SkipWs();
  if (cur.pos != text.size()) {
    if (error != nullptr) *error = "trailing content";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Prometheus exposition validation.

namespace {

bool ValidMetricNameChar(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

/// Validates `name{labels} value` sample syntax. Returns false + error.
bool ValidateSampleLine(std::string_view line, std::string* error) {
  size_t i = 0;
  if (line.empty() || !ValidMetricNameChar(line[0], true)) {
    *error = "sample does not start with a metric name";
    return false;
  }
  while (i < line.size() && ValidMetricNameChar(line[i], false)) ++i;
  if (i < line.size() && line[i] == '{') {
    const size_t close = line.find('}', i);
    if (close == std::string_view::npos) {
      *error = "unterminated label block";
      return false;
    }
    // Labels: name="value" pairs, comma-separated; quotes must balance.
    std::string_view body = line.substr(i + 1, close - i - 1);
    size_t quotes = std::count(body.begin(), body.end(), '"');
    if (!body.empty() && (quotes == 0 || quotes % 2 != 0 ||
                          body.find('=') == std::string_view::npos)) {
      *error = "malformed label block";
      return false;
    }
    i = close + 1;
  }
  if (i >= line.size() || line[i] != ' ') {
    *error = "missing space before value";
    return false;
  }
  const std::string value(line.substr(i + 1));
  if (value.empty()) {
    *error = "missing sample value";
    return false;
  }
  char* end = nullptr;
  std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    *error = "sample value is not a number";
    return false;
  }
  return true;
}

}  // namespace

PromValidation ValidatePrometheusText(std::string_view text) {
  PromValidation result;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    ++line_no;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# HELP ", 0) == 0) continue;
      if (line.rfind("# TYPE ", 0) == 0) {
        ++result.families;
        const std::string_view rest = line.substr(7);
        const size_t sp = rest.find(' ');
        const std::string_view type =
            sp == std::string_view::npos ? "" : rest.substr(sp + 1);
        if (type != "counter" && type != "gauge" && type != "summary" &&
            type != "histogram" && type != "untyped") {
          result.error = "line " + std::to_string(line_no) +
                         ": unknown TYPE '" + std::string(type) + "'";
          return result;
        }
        continue;
      }
      continue;  // other comments are legal
    }
    std::string error;
    if (!ValidateSampleLine(line, &error)) {
      result.error = "line " + std::to_string(line_no) + ": " + error;
      return result;
    }
    ++result.samples;
  }
  result.ok = true;
  return result;
}

}  // namespace qf::obs
