// Snapshot exporters and the matching parsers.
//
// Two wire formats for a MetricsSnapshot:
//   * Prometheus text exposition (RenderPrometheus): counters/gauges as-is,
//     histograms as summaries (quantile-labelled samples + _sum/_count).
//     Registry names may embed a label set (`name{shard="0"}`); the
//     renderer splices additional labels (e.g. quantile) into it.
//   * JSON lines (RenderJsonLine): one self-contained JSON object per
//     snapshot, with pre-computed histogram quantiles — the format
//     MetricsSink appends and tools/qf_top polls.
//
// The parsers exist so that tools and CI can validate what was exported
// without external dependencies: ParseJson is a strict little recursive
// JSON reader (objects/arrays/strings/numbers/bools/null), and
// ValidatePrometheusText checks exposition-format well-formedness
// (HELP/TYPE lines, sample syntax, label quoting).

#ifndef QUANTILEFILTER_OBS_EXPORT_H_
#define QUANTILEFILTER_OBS_EXPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.h"

namespace qf::obs {

/// Splits a registry metric name into its base and the label body (the text
/// inside `{}`, no braces). `qf_x{shard="0"}` -> {"qf_x", "shard=\"0\""};
/// plain names return an empty label body.
struct ParsedName {
  std::string base;
  std::string labels;
};
ParsedName SplitMetricName(std::string_view name);

/// Quantiles exported for each histogram, shared by both formats.
inline constexpr double kExportQuantiles[] = {0.5, 0.9, 0.99, 0.999};

std::string RenderPrometheus(const MetricsSnapshot& snapshot);
std::string RenderJsonLine(const MetricsSnapshot& snapshot);

/// Minimal JSON document model for the tools' own output formats.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::map<std::string, std::unique_ptr<JsonValue>> object;
  std::vector<std::unique_ptr<JsonValue>> array;

  const JsonValue* Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
  double NumberOr(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
};

/// Parses `text` into `out`. On failure returns false and sets `error`.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

/// Validates Prometheus text exposition format. Returns true and the number
/// of samples seen on success; false with a line-numbered error otherwise.
struct PromValidation {
  bool ok = false;
  size_t samples = 0;
  size_t families = 0;
  std::string error;
};
PromValidation ValidatePrometheusText(std::string_view text);

}  // namespace qf::obs

#endif  // QUANTILEFILTER_OBS_EXPORT_H_
