#include "obs/trace_ring.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace qf::obs {

std::vector<TraceEntry> TraceRing::Entries() const {
  const uint64_t total = next_.load(std::memory_order_acquire);
  const size_t n = CountEntries();
  std::vector<TraceEntry> out;
  out.reserve(n);
  // When wrapped, the oldest surviving entry is at index `total - n`.
  for (uint64_t i = total - n; i < total; ++i) {
    out.push_back(entries_[i & mask_]);
  }
  return out;
}

bool TraceRing::DumpChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::vector<TraceEntry> events = Entries();
  std::sort(events.begin(), events.end(),
            [](const TraceEntry& a, const TraceEntry& b) {
              return a.start_ns < b.start_ns;
            });
  std::fprintf(f, "{\"traceEvents\":[\n");
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEntry& e = events[i];
    // chrome://tracing timestamps are microseconds (doubles), so ns
    // resolution survives as fractions.
    std::fprintf(
        f,
        "  {\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"arg\":%" PRIu64 "}}%s\n",
        TraceEventName(static_cast<TraceEvent>(e.event)),
        static_cast<unsigned>(e.tid),
        static_cast<double>(e.start_ns) / 1e3,
        static_cast<double>(e.dur_ns) / 1e3, e.arg,
        i + 1 == events.size() ? "" : ",");
  }
  std::fprintf(f, "],\"displayTimeUnit\":\"ns\"}\n");
  return std::fclose(f) == 0;
}

}  // namespace qf::obs
