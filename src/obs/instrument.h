// Compile-time instrumentation gate and the metric bundles used by the
// QuantileFilter stack's hot paths.
//
// QF_METRICS (CMake option, default ON) selects at compile time whether the
// hot paths carry instrumentation:
//   * QF_METRICS=1 — filter-health counters flush from the per-instance
//     Stats every kMetricsFlushItems inserts, the pipeline records
//     per-shard latency/occupancy histograms per batch, and the trace ring
//     can capture stage timing. Budget: <= 3% single-insert overhead
//     (bench/micro_ops.cc + tools/check_metrics_overhead.sh enforce it).
//   * QF_METRICS=0 — the QF_OBS() macro expands to nothing, so the hot
//     paths contain no metrics code at all: no loads, no branches, no
//     symbol references. The obs library itself still builds (exporters
//     and tools are always available; they just see empty registries).
//
// Naming convention: `qf_<layer>_<name>` with Prometheus-style unit and
// `_total` suffixes; per-shard series carry a `{shard="N"}` label embedded
// in the registry name (DESIGN.md §10 documents the full taxonomy).

#ifndef QUANTILEFILTER_OBS_INSTRUMENT_H_
#define QUANTILEFILTER_OBS_INSTRUMENT_H_

#ifndef QF_METRICS
#define QF_METRICS 1
#endif

#if QF_METRICS
#define QF_OBS(...) \
  do {              \
    __VA_ARGS__;    \
  } while (0)
#else
// Arguments are dropped unexpanded: with metrics off the operands are never
// evaluated, never odr-used, and generate no code.
#define QF_OBS(...) \
  do {              \
  } while (0)
#endif

#if QF_METRICS

#include <cstdint>
#include <string>

#include "obs/registry.h"
#include "obs/trace_ring.h"

namespace qf::obs {

/// Filter-health counters, aggregated across every QuantileFilter instance
/// in the process (shards sum naturally). Flushed from the per-instance
/// Stats at batch granularity, never incremented per item.
struct FilterMetrics {
  Counter& items;
  Counter& reports;
  Counter& candidate_hits;
  Counter& admissions;  // == occupied candidate slots (slots never vacate)
  Counter& vague_inserts;
  Counter& swaps;
  Counter& candidate_slots;  // capacity, added once per filter construction
  Counter& rounding_up;      // probabilistic-rounding tallies
  Counter& rounding_down;
  Counter& vague_saturations;  // estimate pinned at the counter-type max

  static FilterMetrics& Get() {
    static FilterMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new FilterMetrics{
          r.GetCounter("qf_filter_items_total", "items inserted"),
          r.GetCounter("qf_filter_reports_total",
                       "outstanding-key reports emitted"),
          r.GetCounter("qf_filter_candidate_hits_total",
                       "items resolved in the candidate part"),
          r.GetCounter("qf_filter_candidate_admissions_total",
                       "items admitted to empty candidate slots (equals "
                       "occupied slots; slots never vacate between resets)"),
          r.GetCounter("qf_filter_vague_inserts_total",
                       "items routed to the vague part"),
          r.GetCounter("qf_filter_election_swaps_total",
                       "candidate-election swaps"),
          r.GetCounter("qf_filter_candidate_slots_total",
                       "candidate slot capacity across constructed filters"),
          r.GetCounter("qf_filter_rounding_up_total",
                       "probabilistic roundings that rounded up"),
          r.GetCounter("qf_filter_rounding_down_total",
                       "probabilistic roundings that rounded down"),
          r.GetCounter("qf_filter_vague_saturation_total",
                       "vague estimates pinned at the counter max"),
      };
    }();
    return *m;
  }
};

/// Thread-local scratch tallies for events that fire inside leaf helpers
/// (probabilistic rounding in qweight.h, saturation checks in vague_part.h)
/// where per-event atomic counters would be too hot. Plain increments;
/// drained into FilterMetrics by the owning filter's periodic flush.
struct HotTally {
  uint64_t rounding_up = 0;
  uint64_t rounding_down = 0;
  uint64_t vague_saturations = 0;
};

inline HotTally& Tally() {
  thread_local HotTally tally;
  return tally;
}

/// Adds the calling thread's tallies into the global counters and zeroes
/// them. Cheap no-op when nothing accumulated.
inline void DrainTally() {
  HotTally& t = Tally();
  if (t.rounding_up != 0) {
    FilterMetrics::Get().rounding_up.Add(t.rounding_up);
    t.rounding_up = 0;
  }
  if (t.rounding_down != 0) {
    FilterMetrics::Get().rounding_down.Add(t.rounding_down);
    t.rounding_down = 0;
  }
  if (t.vague_saturations != 0) {
    FilterMetrics::Get().vague_saturations.Add(t.vague_saturations);
    t.vague_saturations = 0;
  }
}

/// Per-shard pipeline series (registered on first pipeline construction
/// for a given shard index; later pipelines reuse the same series).
struct ShardMetrics {
  Histogram& ingest_ns;      // per-batch InsertBatch latency
  Histogram& batch_items;    // items per processed batch
  Histogram& ring_occupancy; // ring occupancy (batches) sampled at pop
};

inline ShardMetrics ShardMetricsFor(int shard) {
  MetricsRegistry& r = MetricsRegistry::Global();
  const std::string label = "{shard=\"" + std::to_string(shard) + "\"}";
  return ShardMetrics{
      r.GetHistogram("qf_pipeline_ingest_batch_ns" + label,
                     "per-batch shard ingest latency", "ns"),
      r.GetHistogram("qf_pipeline_batch_items" + label,
                     "items per processed batch", "items"),
      r.GetHistogram("qf_pipeline_ring_occupancy" + label,
                     "SPSC ring occupancy in batches, sampled at pop",
                     "batches"),
  };
}

/// Ingest-path stage latency histograms (DESIGN.md §15): one histogram per
/// stage of a request's life, recorded where the stage ends. Per-frame and
/// per-sync stages (decode, arena push, WAL sync, ack) record every event —
/// they amortize over hundreds of items. The two per-span stages (queue
/// wait, insert) sample 1-in-kStageRecordSampleEvery spans so the worker
/// hot path stays inside the <=3% single-insert overhead gate; sampling a
/// latency distribution uniformly leaves its percentiles unbiased.
struct StageMetrics {
  Histogram& decode_ns;      // reactor: INGEST header parse + payload stage
  Histogram& arena_push_ns;  // reactor: arena scatter + span publish
  Histogram& queue_wait_ns;  // span publish -> worker pop (cross-thread)
  Histogram& insert_ns;      // worker: InsertBatch over one span
  Histogram& wal_sync_ns;    // reactor: group-commit fdatasync duration
  Histogram& ack_ns;         // WAL append -> ack bytes queued to the socket

  static StageMetrics& Get() {
    static StageMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new StageMetrics{
          r.GetHistogram("qf_stage_decode_ns",
                         "reactor INGEST frame decode + payload staging",
                         "ns"),
          r.GetHistogram("qf_stage_arena_push_ns",
                         "reactor arena scatter + span publish", "ns"),
          r.GetHistogram("qf_stage_queue_wait_ns",
                         "span publish to worker pop (ring/queue wait)",
                         "ns"),
          r.GetHistogram("qf_stage_insert_ns",
                         "worker InsertBatch latency per span", "ns"),
          r.GetHistogram("qf_stage_wal_sync_ns",
                         "WAL group-commit sync duration", "ns"),
          r.GetHistogram("qf_stage_ack_ns",
                         "WAL append to ack bytes queued (deferred-ack "
                         "latency)",
                         "ns"),
      };
    }();
    return *m;
  }
};

/// 1-in-N sampling decision for TraceRing stage-span emission. Per-thread
/// counter, so every thread emits its own steady trickle of spans.
inline constexpr uint32_t kStageTraceSampleEvery = 64;

inline bool StageTraceSampleHit() {
  thread_local uint32_t since_last = 0;
  if (++since_last < kStageTraceSampleEvery) return false;
  since_last = 0;
  return true;
}

/// 1-in-N sampling decision for the per-span stage histograms (queue wait,
/// insert). A span can be as small as one pipeline batch (32 items), so
/// recording every span would cost ~2 histogram Records per 32 inserts —
/// several percent of a ~15ns insert. Sampling 1-in-4 keeps the worker-side
/// stage cost near 0.3ns/item while still recording thousands of spans per
/// second under load. Separate counter from StageTraceSampleHit so trace
/// density is independent of histogram density.
inline constexpr uint32_t kStageRecordSampleEvery = 4;

inline bool StageRecordSampleHit() {
  thread_local uint32_t since_last = 0;
  if (++since_last < kStageRecordSampleEvery) return false;
  since_last = 0;
  return true;
}

/// Pipeline-wide counters.
struct PipelineMetrics {
  Counter& items_dispatched;
  Counter& items_processed;
  Counter& batches;
  Counter& ring_full_waits;  // dispatcher backpressure stalls
  Counter& worker_spins;     // consumer empty-ring poll rounds
  Counter& worker_parks;     // worker futex sleeps (empty rings, no control)
  Counter& producer_parks;   // dispatcher futex sleeps (backpressure)
  Counter& handoff_wakes;    // futex wakes delivered to a parked thread

  static PipelineMetrics& Get() {
    static PipelineMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new PipelineMetrics{
          r.GetCounter("qf_pipeline_items_dispatched_total",
                       "items accepted by Push"),
          r.GetCounter("qf_pipeline_items_processed_total",
                       "items drained by workers"),
          r.GetCounter("qf_pipeline_batches_total",
                       "batches shipped through the rings"),
          r.GetCounter("qf_pipeline_ring_full_waits_total",
                       "dispatcher backpressure stalls on a full ring/arena"),
          r.GetCounter("qf_pipeline_worker_spins_total",
                       "worker empty-ring poll rounds before parking"),
          r.GetCounter("qf_pipeline_worker_parks_total",
                       "worker futex sleeps on an empty shard"),
          r.GetCounter("qf_pipeline_producer_parks_total",
                       "dispatcher futex sleeps under shard backpressure"),
          r.GetCounter("qf_pipeline_handoff_wakes_total",
                       "futex wakes delivered to parked pipeline threads"),
      };
    }();
    return *m;
  }
};

}  // namespace qf::obs

#endif  // QF_METRICS

#endif  // QUANTILEFILTER_OBS_INSTRUMENT_H_
