#include "obs/sink.h"

#include <chrono>
#include <cstdio>

#include "obs/export.h"

namespace qf::obs {
namespace {

bool AppendToFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return (std::fclose(f) == 0) && ok;
}

bool AtomicRewrite(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  if (std::fclose(f) != 0 || !ok) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

bool MetricsSink::WriteOnce() {
  const MetricsSnapshot snapshot = registry_->Snapshot();
  bool ok = true;
  if (!options_.jsonl_path.empty()) {
    ok = AppendToFile(options_.jsonl_path, RenderJsonLine(snapshot)) && ok;
  }
  if (!options_.prom_path.empty()) {
    ok = AtomicRewrite(options_.prom_path, RenderPrometheus(snapshot)) && ok;
  }
  return ok;
}

void MetricsSink::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSink::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  WriteOnce();  // final snapshot so short runs always leave one behind
}

void MetricsSink::Loop() {
  // Sleep in small slices so Stop() never waits a full interval.
  const auto slice = std::chrono::milliseconds(20);
  auto next = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(options_.interval_ms);
  while (!stop_.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= next) {
      WriteOnce();
      next += std::chrono::milliseconds(options_.interval_ms);
    }
    std::this_thread::sleep_for(slice);
  }
}

}  // namespace qf::obs
