// MetricsRegistry: named counters, gauges and latency/value histograms with
// lock-free recording and on-demand merged snapshots.
//
// Recording design (the hot side):
//   * Every recording thread gets a small dense slot index (ThreadSlotIndex).
//   * A Counter owns kSlots cache-line-padded atomic cells; Add() is one
//     relaxed fetch_add on the calling thread's cell — no CAS, no sharing in
//     the common case. If more threads than slots exist, threads share cells
//     (still correct: relaxed atomic adds commute; only padding is lost).
//   * A Histogram owns kSlots lazily-allocated LogLinearHistograms published
//     with release stores; Record() touches only the caller's slab.
//   * A Gauge is a single padded atomic (gauges are set rarely).
//
// The registry itself (name -> metric) is mutex-protected and only touched
// at registration and snapshot time, never on the record path: Get* returns
// a stable reference that call sites cache. Metric names follow the
// `qf_<layer>_<name>` convention and may carry a Prometheus-style label set
// (`qf_pipeline_ingest_batch_ns{shard="3"}`); exporters split that back out
// (obs/export.h).
//
// Everything here is header-only on purpose: the QF_METRICS hooks in core
// headers (quantile_filter.h, pipeline.h) must not force a link dependency
// on the qf_obs library, which holds only the exporters.

#ifndef QUANTILEFILTER_OBS_REGISTRY_H_
#define QUANTILEFILTER_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/padding.h"
#include "common/time.h"
#include "obs/histogram.h"

namespace qf::obs {

/// Dense per-thread slot index used to stripe metric storage. Monotonically
/// assigned on first use per thread; never reused (retired threads leave
/// their cells behind, which snapshots keep summing — totals stay exact).
inline int ThreadSlotIndex() {
  static std::atomic<int> next{0};
  thread_local const int slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Monotonic counter with per-thread striped cells.
class Counter {
 public:
  static constexpr size_t kSlots = 16;

  void Add(uint64_t n = 1) {
    cells_[static_cast<size_t>(ThreadSlotIndex()) & (kSlots - 1)]
        .value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  Padded<std::atomic<uint64_t>> cells_[kSlots];
};

/// Last-write-wins signed gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.value.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.value.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const {
    return value_.value.load(std::memory_order_relaxed);
  }

 private:
  Padded<std::atomic<int64_t>> value_;
};

/// Log-linear histogram with per-thread striped slabs (~15 KB each,
/// allocated on a slot's first record).
class Histogram {
 public:
  static constexpr size_t kSlots = 8;

  Histogram() = default;
  ~Histogram() {
    for (auto& slot : slabs_) {
      delete slot.value.load(std::memory_order_acquire);
    }
  }
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value, uint64_t n = 1) {
    auto& slot =
        slabs_[static_cast<size_t>(ThreadSlotIndex()) & (kSlots - 1)];
    LogLinearHistogram* h = slot.value.load(std::memory_order_acquire);
    if (h == nullptr) h = AllocateSlab(slot);
    h->Record(value, n);
  }

  /// Merged view across all slabs.
  HistogramData Merged() const {
    HistogramData out;
    for (const auto& slot : slabs_) {
      const LogLinearHistogram* h =
          slot.value.load(std::memory_order_acquire);
      if (h != nullptr) h->AccumulateInto(&out);
    }
    return out;
  }

 private:
  LogLinearHistogram* AllocateSlab(
      Padded<std::atomic<LogLinearHistogram*>>& slot) {
    auto* fresh = new LogLinearHistogram();
    LogLinearHistogram* expected = nullptr;
    // CAS because two threads sharing a slot (more threads than kSlots) can
    // race the first allocation; the loser records into the winner's slab.
    if (slot.value.compare_exchange_strong(expected, fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      return fresh;
    }
    delete fresh;
    return expected;
  }

  Padded<std::atomic<LogLinearHistogram*>> slabs_[kSlots];
};

/// One merged snapshot of a registry (see MetricsRegistry::Snapshot).
struct CounterSample {
  std::string name, help;
  uint64_t value = 0;
};
struct GaugeSample {
  std::string name, help;
  int64_t value = 0;
};
struct HistogramSample {
  std::string name, help, unit;
  HistogramData data;
};
struct MetricsSnapshot {
  uint64_t wall_ns = 0;  // system clock, for humans and JSONL timestamps
  uint64_t mono_ns = 0;  // steady clock, for rate computation across polls
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class MetricsRegistry {
 public:
  /// Process-wide registry used by the QF_METRICS instrumentation hooks.
  /// Tests that need isolation construct their own instances.
  static MetricsRegistry& Global() {
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
  }

  /// Returns the metric registered under `name`, creating it on first use.
  /// References stay valid for the registry's lifetime (entries live in
  /// deques and are never erased); call sites cache them.
  Counter& GetCounter(std::string_view name, std::string_view help = "") {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : counters_) {
      if (e.name == name) return e.metric;
    }
    return counters_.emplace_back(std::string(name), std::string(help))
        .metric;
  }

  Gauge& GetGauge(std::string_view name, std::string_view help = "") {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : gauges_) {
      if (e.name == name) return e.metric;
    }
    return gauges_.emplace_back(std::string(name), std::string(help)).metric;
  }

  Histogram& GetHistogram(std::string_view name, std::string_view help = "",
                          std::string_view unit = "") {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : histograms_) {
      if (e.name == name) return e.metric;
    }
    auto& entry = histograms_.emplace_back(std::string(name),
                                           std::string(help));
    entry.unit = unit;
    return entry.metric;
  }

  /// Merged view of every registered metric. Safe to call while other
  /// threads record: counter/histogram reads are relaxed, so the snapshot
  /// is a consistent-enough monitoring view, not a linearization point.
  MetricsSnapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    snap.wall_ns = WallNanos();
    snap.mono_ns = MonotonicNanos();
    snap.counters.reserve(counters_.size());
    for (const auto& e : counters_) {
      snap.counters.push_back({e.name, e.help, e.metric.Value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& e : gauges_) {
      snap.gauges.push_back({e.name, e.help, e.metric.Value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& e : histograms_) {
      snap.histograms.push_back({e.name, e.help, e.unit, e.metric.Merged()});
    }
    return snap;
  }

 private:
  template <typename MetricT>
  struct Entry {
    Entry(std::string n, std::string h) : name(std::move(n)), help(std::move(h)) {}
    std::string name, help;
    std::string unit;  // histograms only
    MetricT metric;
  };

  mutable std::mutex mu_;
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Histogram>> histograms_;
};

}  // namespace qf::obs

#endif  // QUANTILEFILTER_OBS_REGISTRY_H_
