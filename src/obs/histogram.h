// Log-linear (HDR-style) histogram for latency and size distributions.
//
// Bucket layout: values below 2^kSubBits land in exact unit buckets; every
// higher power-of-two range [2^k, 2^(k+1)) is split into 2^kSubBits linear
// sub-buckets. The mapping is branch-light integer arithmetic (one
// count-leading-zeros, one shift, one mask), covers the full uint64 range,
// and bounds the relative quantile error by 2^-kSubBits = 1/32 ≈ 3.1%
// (bucket width / bucket lower bound <= 2^-kSubBits everywhere).
//
// Two flavours share the bucket math:
//   * LogLinearHistogram — atomic buckets, safe for concurrent Record from
//     any number of threads (relaxed increments; counts are exact once
//     writers quiesce, ordering against concurrent snapshots is not).
//   * HistogramData      — plain merged snapshot with quantile queries and
//     associative MergeFrom, used on the export path.

#ifndef QUANTILEFILTER_OBS_HISTOGRAM_H_
#define QUANTILEFILTER_OBS_HISTOGRAM_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qf::obs {

/// Bucket geometry shared by the recording and snapshot types.
struct HistogramLayout {
  /// Sub-bucket resolution: 2^kSubBits linear sub-buckets per octave.
  static constexpr int kSubBits = 5;
  static constexpr uint64_t kSubCount = uint64_t{1} << kSubBits;

  /// Number of distinct bucket indices BucketIndex can produce. The widest
  /// value (bit 63 set) has shift = 63 - kSubBits, so the last group base
  /// is (shift + 1) << kSubBits and the last index adds kSubCount - 1.
  static constexpr size_t kNumBuckets =
      (static_cast<size_t>(64 - kSubBits) << kSubBits) + kSubCount;

  /// Maps a value to its bucket. Total over uint64: small values map to
  /// exact unit buckets, larger ones to their octave's linear sub-bucket.
  static constexpr size_t BucketIndex(uint64_t v) {
    if (v < kSubCount) return static_cast<size_t>(v);
    const int top = 63 - std::countl_zero(v);  // position of the MSB
    const int shift = top - kSubBits;
    const uint64_t sub = (v >> shift) & (kSubCount - 1);
    return (static_cast<size_t>(shift + 1) << kSubBits) +
           static_cast<size_t>(sub);
  }

  /// Smallest value mapping to bucket `i` (inverse of BucketIndex).
  static constexpr uint64_t BucketLowerBound(size_t i) {
    if (i < kSubCount) return i;
    const int shift = static_cast<int>(i >> kSubBits) - 1;
    const uint64_t sub = i & (kSubCount - 1);
    return (kSubCount + sub) << shift;
  }

  /// Largest value mapping to bucket `i`.
  static constexpr uint64_t BucketUpperBound(size_t i) {
    if (i < kSubCount) return i;
    const int shift = static_cast<int>(i >> kSubBits) - 1;
    return BucketLowerBound(i) + ((uint64_t{1} << shift) - 1);
  }
};

/// Plain merged histogram: bucket counts plus count/sum/max, with quantile
/// queries. Merge is element-wise addition, hence associative and
/// commutative (obs_histogram_test.cc checks this).
class HistogramData : public HistogramLayout {
 public:
  HistogramData() : buckets_(kNumBuckets, 0) {}

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  uint64_t bucket(size_t i) const { return buckets_[i]; }

  void Record(uint64_t value, uint64_t n = 1) {
    buckets_[BucketIndex(value)] += n;
    count_ += n;
    sum_ += value * n;
    if (value > max_) max_ = value;
  }

  /// Raw accumulation used when merging from a recording histogram, whose
  /// exact count/sum/max are carried separately from the bucket array.
  void AddBucket(size_t i, uint64_t n) { buckets_[i] += n; }
  void AddTotals(uint64_t count, uint64_t sum, uint64_t max) {
    count_ += count;
    sum_ += sum;
    if (max > max_) max_ = max;
  }

  void MergeFrom(const HistogramData& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
    AddTotals(other.count_, other.sum_, other.max_);
  }

  /// Value at quantile `q` in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th recorded value, clamped to the observed max
  /// (upper bound keeps the estimate conservative; relative error
  /// <= 2^-kSubBits). Returns 0 when empty.
  uint64_t Quantile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
    if (rank < 1) rank = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= rank) {
        const uint64_t ub = BucketUpperBound(i);
        return ub < max_ ? ub : max_;
      }
    }
    return max_;
  }

  double Mean() const {
    return count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
  }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

/// Concurrent recording histogram: every field is a relaxed atomic, so any
/// number of threads may Record while others snapshot. A concurrent
/// snapshot sees some prefix of each writer's updates (count/sum/buckets
/// may disagree by the in-flight records — fine for monitoring; totals are
/// exact once writers quiesce).
class LogLinearHistogram : public HistogramLayout {
 public:
  LogLinearHistogram() : buckets_(kNumBuckets) {}

  void Record(uint64_t value, uint64_t n = 1) {
    buckets_[BucketIndex(value)].fetch_add(n, std::memory_order_relaxed);
    count_.fetch_add(n, std::memory_order_relaxed);
    sum_.fetch_add(value * n, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value && !max_.compare_exchange_weak(
                               prev, value, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Adds this histogram's contents into `out`.
  void AccumulateInto(HistogramData* out) const {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) out->AddBucket(i, c);
    }
    out->AddTotals(count_.load(std::memory_order_relaxed),
                   sum_.load(std::memory_order_relaxed),
                   max_.load(std::memory_order_relaxed));
  }

 private:
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace qf::obs

#endif  // QUANTILEFILTER_OBS_HISTOGRAM_H_
