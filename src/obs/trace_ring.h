// Fixed-size binary event-trace ring with a chrome://tracing JSON dump.
//
// The pipeline's stage timing (batch processing, batch shipping, ring
// stalls) is recorded as fixed 24-byte entries into a power-of-two ring.
// Emit() is wait-free: one relaxed fetch_add claims a slot, plain stores
// fill it, and the ring keeps the most recent `capacity` events. Disabled
// (the default) Emit is a single relaxed load and branch; call sites are
// additionally compiled out entirely when QF_METRICS=0.
//
// Dump contract: DumpChromeJson must run while no Emit is in flight (after
// IngestPipeline::Stop(), after worker joins). During concurrent emission
// the entry payloads are plain stores by design — a dump taken mid-run
// could read a torn entry, so the tools only dump at quiescence.

#ifndef QUANTILEFILTER_OBS_TRACE_RING_H_
#define QUANTILEFILTER_OBS_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/memory.h"
#include "common/time.h"

namespace qf::obs {

/// Event kinds recorded by the stack's instrumentation sites. Events 5+ are
/// the serving-path stage spans (DESIGN.md §15): reactors and workers emit
/// into the same ring with disjoint tid rows (see kReactorTidBase), so a
/// chrome://tracing load shows one request's decode -> queue-wait -> insert
/// -> wal-sync -> ack chain stitched across threads.
enum class TraceEvent : uint16_t {
  kBatchProcess = 0,  // worker: one InsertBatch call; arg = items
  kBatchShip = 1,     // dispatcher: one ring push; arg = items
  kRingStall = 2,     // dispatcher: backpressure wait; arg = shard
  kFlush = 3,         // dispatcher: Flush(); arg = shards flushed
  kSnapshot = 4,      // exporter: registry snapshot; arg = metrics
  kFrameDecode = 5,   // reactor: INGEST frame decode + stage; arg = items
  kQueueWait = 6,     // worker: span publish -> pop wait; arg = items
  kWalSync = 7,       // reactor: WAL group-commit sync; arg = acks released
  kAckFlush = 8,      // reactor: deferred-ack release; arg = ack bytes
  kAlertDeliver = 9,  // reactor 0: alert broadcast; arg = subscribers
};

/// Reactor emissions use tid = kReactorTidBase + reactor index so their
/// trace rows never collide with worker rows (tid = shard index).
inline constexpr uint16_t kReactorTidBase = 256;

inline const char* TraceEventName(TraceEvent e) {
  switch (e) {
    case TraceEvent::kBatchProcess: return "batch_process";
    case TraceEvent::kBatchShip: return "batch_ship";
    case TraceEvent::kRingStall: return "ring_stall";
    case TraceEvent::kFlush: return "flush";
    case TraceEvent::kSnapshot: return "snapshot";
    case TraceEvent::kFrameDecode: return "frame_decode";
    case TraceEvent::kQueueWait: return "queue_wait";
    case TraceEvent::kWalSync: return "wal_sync";
    case TraceEvent::kAckFlush: return "ack_flush";
    case TraceEvent::kAlertDeliver: return "alert_deliver";
  }
  return "unknown";
}

/// One recorded event. `dur_ns` saturates at ~4.29 s — longer spans are
/// clamped, which chrome://tracing renders fine for pipeline-scale events.
struct TraceEntry {
  uint64_t start_ns = 0;
  uint32_t dur_ns = 0;
  uint16_t event = 0;
  uint16_t tid = 0;  // shard / logical thread id, becomes the trace row
  uint64_t arg = 0;
};

class TraceRing {
 public:
  static TraceRing& Global() {
    static TraceRing* ring = new TraceRing();
    return *ring;
  }

  /// Allocates (or reuses) storage for ~`min_capacity` entries and starts
  /// accepting events. Not thread-safe against concurrent Emit.
  void Enable(size_t min_capacity = size_t{1} << 14) {
    const size_t cap = FloorPow2(min_capacity < 2 ? 2 : min_capacity);
    if (entries_.size() != cap) {
      entries_.assign(cap, TraceEntry{});
      mask_ = cap - 1;
    }
    next_.store(0, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_release);
  }

  /// Stops accepting events; recorded entries remain dumpable.
  void Disable() { enabled_.store(false, std::memory_order_release); }

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  void Emit(TraceEvent event, uint16_t tid, uint64_t start_ns,
            uint64_t dur_ns, uint64_t arg) {
    if (!enabled()) return;
    const uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    TraceEntry& e = entries_[i & mask_];
    e.start_ns = start_ns;
    e.dur_ns = dur_ns > UINT32_MAX ? UINT32_MAX
                                   : static_cast<uint32_t>(dur_ns);
    e.event = static_cast<uint16_t>(event);
    e.tid = tid;
    e.arg = arg;
  }

  /// Number of valid entries currently held (<= capacity).
  size_t CountEntries() const {
    const uint64_t n = next_.load(std::memory_order_acquire);
    return n < entries_.size() ? static_cast<size_t>(n) : entries_.size();
  }

  size_t capacity() const { return entries_.size(); }

  /// Total events emitted since Enable (>= CountEntries once wrapped).
  uint64_t TotalEmitted() const {
    return next_.load(std::memory_order_acquire);
  }

  /// Copies the valid entries out, oldest first. Quiescence contract as for
  /// DumpChromeJson.
  std::vector<TraceEntry> Entries() const;

  /// Writes a chrome://tracing-loadable JSON trace ("traceEvents" array of
  /// complete "X" events; tid = shard row). Returns false on I/O error.
  /// Must run at quiescence (no concurrent Emit).
  bool DumpChromeJson(const std::string& path) const;

 private:
  std::vector<TraceEntry> entries_;
  size_t mask_ = 0;
  std::atomic<uint64_t> next_{0};
  std::atomic<bool> enabled_{false};
};

}  // namespace qf::obs

#endif  // QUANTILEFILTER_OBS_TRACE_RING_H_
