// Production-facing stream monitor built on QuantileFilter (extension).
//
// Applications rarely consume raw per-item booleans: an operator wants
// structured alert records, per-key alert cooldowns (a persistently
// outstanding key re-fires every ~eps items, which floods dashboards), and
// periodic state aging. Monitor packages those policies around the filter:
//
//   qf::Monitor::Options options;
//   options.cooldown_items = 10000;  // at most one alert per key per 10k
//   qf::Monitor monitor(options, criteria,
//                       [](const qf::Monitor::Alert& a) { page(a); });
//   monitor.Observe(key, value);

#ifndef QUANTILEFILTER_CORE_MONITOR_H_
#define QUANTILEFILTER_CORE_MONITOR_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "core/quantile_filter.h"

namespace qf {

class Monitor {
 public:
  struct Alert {
    uint64_t key = 0;
    uint64_t item_index = 0;   // stream position that triggered the report
    int64_t qweight = 0;       // Qweight at report time (>= threshold)
    uint64_t suppressed = 0;   // reports swallowed by cooldown since last
  };
  using AlertCallback = std::function<void(const Alert&)>;

  struct Options {
    DefaultQuantileFilter::Options filter;
    /// Minimum items between two alerts for the same key (0 = alert on
    /// every report, the raw filter behaviour).
    uint64_t cooldown_items = 0;
    /// Clear all state every `reset_items` observations (0 = never); the
    /// paper's periodic reset, driven automatically.
    uint64_t reset_items = 0;
  };

  Monitor(const Options& options, const Criteria& criteria,
          AlertCallback callback)
      : options_(options),
        criteria_(criteria),
        callback_(std::move(callback)),
        filter_(options.filter, criteria) {}

  uint64_t items_observed() const { return items_; }
  uint64_t alerts_emitted() const { return alerts_; }
  uint64_t alerts_suppressed() const { return suppressed_total_; }
  const DefaultQuantileFilter& filter() const { return filter_; }
  size_t MemoryBytes() const { return filter_.MemoryBytes(); }

  /// Feeds one item; fires the callback when a report passes the cooldown.
  /// Returns true iff an alert was emitted (not merely reported).
  bool Observe(uint64_t key, double value) {
    return Observe(key, value, criteria_);
  }

  bool Observe(uint64_t key, double value, const Criteria& criteria) {
    if (options_.reset_items > 0 && items_ > 0 &&
        items_ % options_.reset_items == 0) {
      filter_.Reset();
      last_alert_.clear();
    }
    const uint64_t index = items_++;
    // QueryQweight before the report resets it, so the alert can carry it.
    if (!filter_.Insert(key, value, criteria)) return false;

    if (options_.cooldown_items > 0) {
      auto it = last_alert_.find(key);
      if (it != last_alert_.end() &&
          index - it->second.index < options_.cooldown_items) {
        ++it->second.suppressed;
        ++suppressed_total_;
        return false;
      }
    }

    Alert alert;
    alert.key = key;
    alert.item_index = index;
    alert.qweight = criteria.report_threshold();  // state resets on report
    auto& entry = last_alert_[key];
    alert.suppressed = entry.suppressed;
    entry = KeyState{index, 0};
    ++alerts_;
    if (callback_) callback_(alert);
    return true;
  }

 private:
  struct KeyState {
    uint64_t index = 0;
    uint64_t suppressed = 0;
  };

  Options options_;
  Criteria criteria_;
  AlertCallback callback_;
  DefaultQuantileFilter filter_;
  std::unordered_map<uint64_t, KeyState> last_alert_;
  uint64_t items_ = 0;
  uint64_t alerts_ = 0;
  uint64_t suppressed_total_ = 0;
};

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_MONITOR_H_
