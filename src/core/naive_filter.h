// The naive dual-Csketch solution (Sec II-D).
//
// Two Count sketches count, per key, the items above and at-or-below T.
// After every insertion the key's two frequencies F_a / F_b are queried and
// the report test F_b <= floor((F_a + F_b) * delta - eps) is applied; on
// report, the estimated frequencies are subtracted back out of both
// sketches. Kept as the paper keeps it: a baseline that motivates the
// Qweight and candidate-election techniques (three sketch operations per
// item, reset error from hash collisions, strong sensitivity to sketch
// size).

#ifndef QUANTILEFILTER_CORE_NAIVE_FILTER_H_
#define QUANTILEFILTER_CORE_NAIVE_FILTER_H_

#include <cstddef>
#include <cstdint>

#include "common/hash.h"
#include "core/criteria.h"
#include "sketch/count_sketch.h"

namespace qf {

class NaiveDualCsketchFilter {
 public:
  struct Options {
    size_t memory_bytes = 256 * 1024;
    /// Fraction of memory for the above-threshold sketch. Abnormal items are
    /// the minority (~5% in the paper's setups), so the above-sketch can be
    /// smaller.
    double above_fraction = 0.5;
    int depth = 3;
    uint64_t seed = 0xBA5EBA11;
  };

  NaiveDualCsketchFilter(const Options& options, const Criteria& criteria)
      : criteria_(criteria),
        above_(CountSketch<int32_t>::FromBytes(
            Fraction(options.memory_bytes, options.above_fraction),
            options.depth, Mix64(options.seed ^ 0xAB0EULL))),
        below_(CountSketch<int32_t>::FromBytes(
            Fraction(options.memory_bytes, 1.0 - options.above_fraction),
            options.depth, Mix64(options.seed ^ 0xBE10ULL))) {}

  const Criteria& criteria() const { return criteria_; }
  size_t MemoryBytes() const {
    return above_.MemoryBytes() + below_.MemoryBytes();
  }

  /// Processes one item; returns true iff `key` is reported.
  bool Insert(uint64_t key, double value) {
    if (criteria_.ValueIsAbnormal(value)) {
      above_.Add(key, 1);
    } else {
      below_.Add(key, 1);
    }
    // Estimates can be negative under collision noise; clamp to 0 as counts.
    const int64_t fa = ClampNonNegative(above_.Estimate(key));
    const int64_t fb = ClampNonNegative(below_.Estimate(key));
    const double n = static_cast<double>(fa + fb);
    if (n <= 0) return false;
    if (static_cast<double>(fb) <= criteria_.delta() * n - criteria_.eps()) {
      // Report: reset the key's counts in both sketches. The subtracted
      // values are estimates, which is exactly the reset error the paper
      // criticizes in this baseline.
      above_.Subtract(key, fa);
      below_.Subtract(key, fb);
      return true;
    }
    return false;
  }

  void Reset() {
    above_.Clear();
    below_.Clear();
  }

 private:
  static size_t Fraction(size_t bytes, double f) {
    size_t share = static_cast<size_t>(static_cast<double>(bytes) * f);
    return share < 64 ? 64 : share;
  }
  static int64_t ClampNonNegative(int64_t v) { return v < 0 ? 0 : v; }

  Criteria criteria_;
  CountSketch<int32_t> above_;
  CountSketch<int32_t> below_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_NAIVE_FILTER_H_
