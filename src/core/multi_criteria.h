// Multiple simultaneous criteria per key (Sec III-C, third flexibility).
//
// One Qweight cannot serve two criteria (unless only eps differs), so each
// (key, criterion) pair is turned into a distinct derived key and inserted
// separately: r criteria cost r insertions per item. This wrapper owns the
// criteria list and the derived-key plumbing.

#ifndef QUANTILEFILTER_CORE_MULTI_CRITERIA_H_
#define QUANTILEFILTER_CORE_MULTI_CRITERIA_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "core/criteria.h"
#include "core/quantile_filter.h"

namespace qf {

template <typename SketchT = CountSketch<int16_t>>
class MultiCriteriaFilter {
 public:
  using Filter = QuantileFilter<SketchT>;

  MultiCriteriaFilter(const typename Filter::Options& options,
                      std::vector<Criteria> criteria)
      : criteria_(std::move(criteria)), filter_(options) {}

  const std::vector<Criteria>& criteria() const { return criteria_; }
  size_t MemoryBytes() const { return filter_.MemoryBytes(); }
  const typename Filter::Stats& stats() const { return filter_.stats(); }

  /// Processes one item under every registered criterion. Returns a bitmask:
  /// bit r is set iff the key was reported under criterion r.
  uint64_t Insert(uint64_t key, double value) {
    uint64_t reported = 0;
    for (size_t r = 0; r < criteria_.size(); ++r) {
      if (filter_.Insert(DerivedKey(key, r), value, criteria_[r])) {
        reported |= (1ULL << r);
      }
    }
    return reported;
  }

  /// Qweight estimate of `key` under criterion `r`.
  int64_t QueryQweight(uint64_t key, size_t r) const {
    return filter_.QueryQweight(DerivedKey(key, r));
  }

  /// Forgets `key`'s state under criterion `r`.
  void Delete(uint64_t key, size_t r) { filter_.Delete(DerivedKey(key, r)); }

  void Reset() { filter_.Reset(); }

 private:
  /// The (key, criterion-number) tuple the paper describes, realized as a
  /// mixed 64-bit derived key.
  static uint64_t DerivedKey(uint64_t key, size_t r) {
    return HashKey(key, 0x3C1A2B00ULL + r);
  }

  std::vector<Criteria> criteria_;
  Filter filter_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_MULTI_CRITERIA_H_
