// Periodic-reset wrapper (the paper's "reset" operation, Sec III-B).
//
// "A fixed-size QuantileFilter needs to be periodically cleared ... outdated
// data should not be included ... it cannot maintain precision with an
// unlimited number of insertions. If it is necessary to adjust the size of
// the data structures, this can be done at this time."
//
// WindowedQuantileFilter clears the wrapped filter every `window_items`
// insertions and supports re-sizing at the window boundary (Resize schedules
// a new budget that takes effect at the next reset, so the hot path never
// reallocates mid-window).

#ifndef QUANTILEFILTER_CORE_WINDOWED_FILTER_H_
#define QUANTILEFILTER_CORE_WINDOWED_FILTER_H_

#include <cstdint>
#include <optional>

#include "core/quantile_filter.h"

namespace qf {

template <typename SketchT = CountSketch<int16_t>>
class WindowedQuantileFilter {
 public:
  using Filter = QuantileFilter<SketchT>;

  /// `window_items`: insertions per window; the filter is cleared at each
  /// boundary. 0 disables periodic resets.
  WindowedQuantileFilter(const typename Filter::Options& options,
                         const Criteria& criteria, uint64_t window_items)
      : options_(options),
        criteria_(criteria),
        window_items_(window_items),
        filter_(options, criteria) {}

  const Filter& filter() const { return filter_; }
  uint64_t window_items() const { return window_items_; }
  uint64_t windows_completed() const { return windows_completed_; }
  uint64_t items_in_window() const { return items_in_window_; }
  size_t MemoryBytes() const { return filter_.MemoryBytes(); }

  /// Processes one item; resets state first if the window just rolled over.
  bool Insert(uint64_t key, double value) {
    return Insert(key, value, criteria_);
  }

  bool Insert(uint64_t key, double value, const Criteria& criteria) {
    if (window_items_ > 0 && items_in_window_ >= window_items_) {
      RollWindow();
    }
    ++items_in_window_;
    return filter_.Insert(key, value, criteria);
  }

  int64_t QueryQweight(uint64_t key) const {
    return filter_.QueryQweight(key);
  }

  /// Schedules a new total memory budget; applied at the next window
  /// boundary (the moment the paper designates for structural changes).
  void Resize(size_t new_memory_bytes) { pending_resize_ = new_memory_bytes; }

  /// Schedules a new window length, applied immediately.
  void SetWindowItems(uint64_t window_items) { window_items_ = window_items; }

  /// Forces a window roll now (e.g. on a wall-clock timer).
  void ForceReset() { RollWindow(); }

 private:
  void RollWindow() {
    ++windows_completed_;
    items_in_window_ = 0;
    if (pending_resize_.has_value()) {
      options_.memory_bytes = *pending_resize_;
      pending_resize_.reset();
      filter_ = Filter(options_, criteria_);
    } else {
      filter_.Reset();
    }
  }

  typename Filter::Options options_;
  Criteria criteria_;
  uint64_t window_items_;
  Filter filter_;
  uint64_t items_in_window_ = 0;
  uint64_t windows_completed_ = 0;
  std::optional<size_t> pending_resize_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_WINDOWED_FILTER_H_
