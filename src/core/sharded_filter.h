// Key-sharded QuantileFilter for multi-core pipelines (extension).
//
// The paper's single-structure design is single-writer. Real deployments
// (cf. OctoSketch [22]) shard the key space across cores: each shard owns an
// independent QuantileFilter over a disjoint key partition, so shards never
// contend and results compose exactly (a key's Qweight lives in exactly one
// shard). This wrapper provides the partitioning, aggregate statistics and
// a per-shard accessor for pinning shards to worker threads.
//
// Thread-safety contract: distinct shards may be driven concurrently from
// distinct threads; a single shard is single-writer, like the underlying
// filter. ShardFor() is pure and lock-free.

#ifndef QUANTILEFILTER_CORE_SHARDED_FILTER_H_
#define QUANTILEFILTER_CORE_SHARDED_FILTER_H_

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/crc32.h"
#include "common/hash.h"
#include "common/serialize.h"
#include "core/quantile_filter.h"

namespace qf {

template <typename SketchT = CountSketch<int16_t>>
class ShardedQuantileFilter {
 public:
  using Filter = QuantileFilter<SketchT>;

  /// Splits `options.memory_bytes` evenly across `num_shards` filters.
  ShardedQuantileFilter(const typename Filter::Options& options,
                        const Criteria& criteria, int num_shards)
      : num_shards_(num_shards < 1 ? 1 : num_shards) {
    typename Filter::Options shard_options = options;
    shard_options.memory_bytes =
        options.memory_bytes / static_cast<size_t>(num_shards_);
    shards_.reserve(num_shards_);
    for (int s = 0; s < num_shards_; ++s) {
      shard_options.seed = Mix64(options.seed + 0x9E37 * (s + 1));
      shards_.push_back(std::make_unique<Filter>(shard_options, criteria));
    }
  }

  /// NUMA-aware variant: constructs shard `s` on a fresh thread after
  /// running `init(s)` on it (the caller typically pins the thread there —
  /// parallel/placement.h). Under Linux first-touch, the filter's candidate
  /// arrays and sketch counters are then backed by pages on the node where
  /// that shard's pipeline worker will run. Seeds and splits match the
  /// plain constructor exactly, so the resulting filter is bit-identical —
  /// only page placement differs.
  template <typename ShardInit>
  ShardedQuantileFilter(const typename Filter::Options& options,
                        const Criteria& criteria, int num_shards,
                        ShardInit&& init)
      : num_shards_(num_shards < 1 ? 1 : num_shards) {
    typename Filter::Options shard_options = options;
    shard_options.memory_bytes =
        options.memory_bytes / static_cast<size_t>(num_shards_);
    shards_.resize(static_cast<size_t>(num_shards_));
    std::vector<std::thread> builders;
    builders.reserve(static_cast<size_t>(num_shards_));
    for (int s = 0; s < num_shards_; ++s) {
      typename Filter::Options opts = shard_options;
      opts.seed = Mix64(options.seed + 0x9E37 * (s + 1));
      builders.emplace_back([this, opts, &criteria, &init, s] {
        init(s);
        shards_[static_cast<size_t>(s)] =
            std::make_unique<Filter>(opts, criteria);
      });
    }
    for (std::thread& t : builders) t.join();
  }

  int num_shards() const { return num_shards_; }

  /// The shard index that owns `key`. Fast-range reduction of a dedicated
  /// hash: pure, lock-free and division-free, so dispatchers can call it
  /// per item. The mapping is stamped by kKeyMappingScheme in serialized
  /// state — changing it invalidates persisted per-shard partitions.
  int ShardFor(uint64_t key) const {
    return static_cast<int>(FastRange64(
        HashKey(key, 0x5A4DULL), static_cast<uint64_t>(num_shards_)));
  }

  /// Direct access to one shard (to drive it from its worker thread).
  Filter& shard(int s) { return *shards_[s]; }
  const Filter& shard(int s) const { return *shards_[s]; }

  /// Convenience single-threaded interface: routes to the owning shard.
  bool Insert(uint64_t key, double value) {
    return shards_[ShardFor(key)]->Insert(key, value);
  }
  bool Insert(uint64_t key, double value, const Criteria& criteria) {
    return shards_[ShardFor(key)]->Insert(key, value, criteria);
  }
  int64_t QueryQweight(uint64_t key) const {
    return shards_[ShardFor(key)]->QueryQweight(key);
  }
  bool IsCandidate(uint64_t key) const {
    return shards_[ShardFor(key)]->IsCandidate(key);
  }
  void Delete(uint64_t key) { shards_[ShardFor(key)]->Delete(key); }

  void Reset() {
    for (auto& shard : shards_) shard->Reset();
  }

  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const auto& shard : shards_) bytes += shard->MemoryBytes();
    return bytes;
  }

  /// Checkpoints all shards. The header records the key->shard mapping
  /// scheme (kKeyMappingScheme) and the shard count, because the per-shard
  /// payloads are only meaningful under the exact ShardFor partition that
  /// produced them: restored into a different mapping, every key would be
  /// looked up in the wrong shard.
  std::vector<uint8_t> SerializeState() const {
    std::vector<uint8_t> out;
    AppendPod(kShardedMagic, &out);
    AppendPod(kKeyMappingScheme, &out);
    AppendPod(static_cast<uint32_t>(num_shards_), &out);
    for (const auto& shard : shards_) {
      AppendVector(shard->SerializeState(), &out);
    }
    return WrapCrc(std::move(out));
  }

  /// Restores state saved by SerializeState into a sharded filter built
  /// with the same options and shard count. Returns false on malformed
  /// input, an envelope CRC mismatch, or a mapping-scheme/shard-count
  /// mismatch; a failure mid-restore resets all shards so no half-restored
  /// partition survives. A CRC-less legacy blob restores with one warning.
  bool RestoreState(const std::vector<uint8_t>& bytes) {
    CrcStatus crc = CrcStatus::kOk;
    if (!RestoreState(bytes, &crc)) return false;
    if (crc == CrcStatus::kMissing) {
      Filter::WarnCrcMissing("ShardedQuantileFilter");
    }
    return true;
  }

  /// As above, reporting the envelope status instead of warning. The outer
  /// envelope covers the per-shard frames too, so inner statuses are not
  /// surfaced separately.
  bool RestoreState(const std::vector<uint8_t>& bytes, CrcStatus* crc) {
    const uint8_t* payload = nullptr;
    size_t payload_size = 0;
    *crc = UnwrapCrc(bytes, &payload, &payload_size);
    if (*crc == CrcStatus::kCorrupt) return false;
    ByteReader reader(payload, payload_size);
    uint32_t magic = 0, scheme = 0, shards = 0;
    if (!reader.Read(&magic) || magic != kShardedMagic) return false;
    if (!reader.Read(&scheme) || scheme != kKeyMappingScheme) return false;
    if (!reader.Read(&shards) ||
        static_cast<int>(shards) != num_shards_) {
      return false;
    }
    for (int s = 0; s < num_shards_; ++s) {
      std::vector<uint8_t> shard_bytes;
      CrcStatus shard_crc = CrcStatus::kOk;
      if (!reader.ReadVector(&shard_bytes) ||
          !shards_[s]->RestoreState(shard_bytes, &shard_crc)) {
        Reset();  // earlier shards may already hold restored state
        return false;
      }
    }
    return true;
  }

  /// Restores a single shard from a per-shard SerializeState frame (the
  /// unit a delta checkpoint stores for each dirty shard — see
  /// src/durable/checkpoint.h). Fails closed on a CRC-less or corrupt
  /// frame; other shards are untouched either way, so the caller decides
  /// whether a failed delta application invalidates the whole restore.
  bool RestoreShardState(int s, const std::vector<uint8_t>& bytes) {
    if (s < 0 || s >= num_shards_) return false;
    CrcStatus crc = CrcStatus::kOk;
    return shards_[s]->RestoreState(bytes, &crc) && crc == CrcStatus::kOk;
  }

  /// Publishes every shard's unflushed stats deltas to the global metrics
  /// counters (see QuantileFilter::FlushMetrics). Caller must hold exclusive
  /// access to all shards — e.g. after IngestPipeline::Stop() has joined the
  /// workers. No-op when QF_METRICS=0.
  void FlushMetrics() {
    for (auto& shard : shards_) shard->FlushMetrics();
  }

  /// Sum of per-shard statistics.
  typename Filter::Stats AggregateStats() const {
    typename Filter::Stats total;
    for (const auto& shard : shards_) {
      const auto& s = shard->stats();
      total.items += s.items;
      total.reports += s.reports;
      total.candidate_hits += s.candidate_hits;
      total.admissions += s.admissions;
      total.vague_inserts += s.vague_inserts;
      total.swaps += s.swaps;
    }
    return total;
  }

 private:
  static constexpr uint32_t kShardedMagic = 0x51534832;  // "QSH2"

  int num_shards_;
  std::vector<std::unique_ptr<Filter>> shards_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_SHARDED_FILTER_H_
