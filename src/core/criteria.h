// Filtering criteria <eps, delta, T> (Definition 4) and the derived Qweight
// constants (Sec III-A).
//
// Qweight assigns -1 to items with value <= T and +delta/(1-delta) to items
// with value > T; the key is outstanding exactly when its total Qweight is
// >= eps/(1-delta). Criteria precomputes those derived constants once so the
// per-item hot path does no divisions.

#ifndef QUANTILEFILTER_CORE_CRITERIA_H_
#define QUANTILEFILTER_CORE_CRITERIA_H_

#include <cmath>
#include <cstdint>

namespace qf {

class Criteria {
 public:
  /// `delta` in [0, 1): the monitored quantile. `eps` >= 0: allowed rank
  /// deviation (suppresses premature/infrequent-key reports). `threshold`:
  /// the value threshold T.
  Criteria(double eps, double delta, double threshold)
      : eps_(eps < 0 ? 0 : eps),
        delta_(Clamp01(delta)),
        threshold_(threshold),
        positive_weight_(delta_ / (1.0 - delta_)),
        positive_floor_(static_cast<int64_t>(std::floor(positive_weight_))),
        positive_frac_(positive_weight_ -
                       static_cast<double>(positive_floor_)),
        report_threshold_(static_cast<int64_t>(
            std::ceil(eps_ / (1.0 - delta_) - kSnap))) {
    // Snap fractional parts produced purely by floating-point noise (e.g.
    // delta = 0.9 gives 9.000000000000002 or 18.999999999999996): a weight
    // that is mathematically integral must be treated as such, or report
    // thresholds and draws go off by one at exact boundaries.
    if (positive_frac_ < kSnap) {
      positive_frac_ = 0.0;
    } else if (positive_frac_ > 1.0 - kSnap) {
      ++positive_floor_;
      positive_frac_ = 0.0;
    }
  }

  /// Default criteria from the paper's evaluation: eps=30, delta=0.95, T=300.
  Criteria() : Criteria(30.0, 0.95, 300.0) {}

  double eps() const { return eps_; }
  double delta() const { return delta_; }
  double threshold() const { return threshold_; }

  /// True if `value` counts as abnormal (exceeds T).
  bool ValueIsAbnormal(double value) const { return value > threshold_; }

  /// Weight of an abnormal item: delta / (1 - delta).
  double positive_weight() const { return positive_weight_; }
  /// Integer part of positive_weight(); the deterministic counter increment.
  int64_t positive_floor() const { return positive_floor_; }
  /// Fractional part of positive_weight(); the probability of the extra +1.
  double positive_frac() const { return positive_frac_; }

  /// Integer report threshold: a key whose (integer) Qweight reaches this is
  /// reported. For integer counters, C >= eps/(1-delta) iff
  /// C >= ceil(eps/(1-delta)).
  int64_t report_threshold() const { return report_threshold_; }

  /// Exact real-valued report threshold eps / (1 - delta).
  double report_threshold_real() const { return eps_ / (1.0 - delta_); }

  friend bool operator==(const Criteria& a, const Criteria& b) {
    return a.eps_ == b.eps_ && a.delta_ == b.delta_ &&
           a.threshold_ == b.threshold_;
  }

 private:
  static constexpr double kSnap = 1e-9;

  static double Clamp01(double d) {
    if (d < 0.0) return 0.0;
    // delta == 1 would make the positive weight infinite; cap just below.
    if (d > 0.999999) return 0.999999;
    return d;
  }

  double eps_;
  double delta_;
  double threshold_;
  double positive_weight_;
  int64_t positive_floor_;
  double positive_frac_;
  int64_t report_threshold_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_CRITERIA_H_
