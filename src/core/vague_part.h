// Vague part of QuantileFilter (Sec III-A/III-B).
//
// A thin, typed wrapper around a signed sketch that speaks Qweights: it
// converts an item's (value, criteria) into an unbiased integer weight and
// offers the estimate / reset-after-report operations Algorithm 1 needs.
//
// Two interchangeable engines (Options::vague_layout selects per filter):
//   * classic — the template parameter SketchT (Count sketch by default;
//     Count-Min for the paper's "Choice 2" ablation; float counters for the
//     rounding ablation): d independent random cache lines per item.
//   * blocked — BlockedCountSketch over SketchT's counter type: all d
//     counters in one 64-byte block, one cache miss per item
//     (sketch/blocked_count_sketch.h). Only meaningful for integer Count
//     sketch configurations; other SketchT silently keep the classic
//     layout (layout() reports what is actually in effect).
//
// Exactly one engine is constructed; every method dispatches on one
// perfectly-predicted branch, so the classic path's codegen is unchanged.

#ifndef QUANTILEFILTER_CORE_VAGUE_PART_H_
#define QUANTILEFILTER_CORE_VAGUE_PART_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/random.h"
#include "common/serialize.h"
#include "core/criteria.h"
#include "core/qweight.h"
#include "obs/instrument.h"
#include "sketch/blocked_count_sketch.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"

namespace qf {

/// Which SketchT configurations have a blocked-layout equivalent: integer
/// Count sketches (the signed median estimator is what the blocked layout
/// reimplements). The placeholder counter keeps the unused BlockedT member
/// instantiable for every SketchT.
template <typename SketchT>
struct BlockedLayoutSupport {
  static constexpr bool value = false;
  using counter = int16_t;
};
template <typename C>
  requires(std::is_integral_v<C> && std::is_signed_v<C> && sizeof(C) <= 4)
struct BlockedLayoutSupport<CountSketch<C>> {
  static constexpr bool value = true;
  using counter = C;
};

template <typename SketchT>
class VaguePart {
 public:
  using Support = BlockedLayoutSupport<SketchT>;
  using BlockedT = BlockedCountSketch<typename Support::counter>;
  static constexpr bool kSupportsBlocked = Support::value;

  VaguePart(size_t memory_bytes, int depth, uint64_t seed,
            VagueLayout layout = VagueLayout::kClassic)
      : layout_(kSupportsBlocked && layout == VagueLayout::kBlocked
                    ? VagueLayout::kBlocked
                    : VagueLayout::kClassic) {
    if (layout_ == VagueLayout::kBlocked) {
      blocked_.emplace(BlockedT::FromBytes(memory_bytes, depth, seed));
    } else {
      classic_.emplace(SketchT::FromBytes(memory_bytes, depth, seed));
    }
  }

  /// The layout actually in effect (a blocked request on an unsupported
  /// SketchT falls back to classic).
  VagueLayout layout() const { return layout_; }

  int depth() const { return blocked_ ? blocked_->depth() : classic_->depth(); }
  size_t width() const {
    return blocked_ ? blocked_->width() : classic_->width();
  }
  size_t MemoryBytes() const {
    return blocked_ ? blocked_->MemoryBytes() : classic_->MemoryBytes();
  }

  /// Inserts one item for `vkey` and returns the post-insert Qweight
  /// estimate (Algorithm 1 lines 3-5). Integer counters receive the
  /// unbiased probabilistically-rounded weight; floating-point counters
  /// (the paper's alternative design) accumulate the exact weight.
  int64_t Insert(uint64_t vkey, bool abnormal, const Criteria& criteria,
                 Rng& rng) {
    if (blocked_) {
      // Fused add+estimate: one hash and one cache line for the whole of
      // Algorithm 1's insert-then-read step.
      const int64_t estimate =
          blocked_->AddEstimate(vkey, DrawItemQweight(abnormal, criteria, rng));
      QF_OBS(if (estimate >= std::numeric_limits<
                                 typename BlockedT::counter_type>::max()) {
        ++obs::Tally().vague_saturations;
      });
      return estimate;
    }
    SketchT& sketch = *classic_;
    if constexpr (SketchT::kFloatingCounters) {
      sketch.AddReal(vkey, ExactItemQweight(abnormal, criteria));
    } else {
      sketch.Add(vkey, DrawItemQweight(abnormal, criteria, rng));
    }
    const int64_t estimate = sketch.Estimate(vkey);
#if QF_METRICS
    // Saturation health signal: a median estimate pinned at the counter
    // max means at least half the rows clamped — the budget is too small
    // for the load (DESIGN.md §10). Only sketches with a uniform counter
    // type expose a single saturation point (TowerSketch's rows differ in
    // width, so it opts out by not defining counter_type).
    if constexpr (!SketchT::kFloatingCounters &&
                  requires { typename SketchT::counter_type; }) {
      if (estimate >=
          std::numeric_limits<typename SketchT::counter_type>::max()) {
        ++obs::Tally().vague_saturations;
      }
    }
#endif
    return estimate;
  }

  /// Adds a raw integer Qweight (used when a candidate entry is demoted
  /// into the vague part during election).
  void Add(uint64_t vkey, int64_t qweight) {
    if (blocked_) {
      blocked_->Add(vkey, qweight);
    } else {
      classic_->Add(vkey, qweight);
    }
  }

  /// Prefetches the counter storage `vkey` maps to, ahead of a possible
  /// Insert/Estimate (the batched insert window issues this for every item
  /// while earlier items are still draining): d lines for the classic
  /// layout, the single block for the blocked layout.
  void Prefetch(uint64_t vkey) const {
    if (blocked_) {
      blocked_->Prefetch(vkey);
    } else {
      classic_->Prefetch(vkey);
    }
  }

  int64_t Estimate(uint64_t vkey) const {
    return blocked_ ? blocked_->Estimate(vkey) : classic_->Estimate(vkey);
  }

  /// Removes `amount` of estimated Qweight from `vkey`'s counters — the
  /// reset-after-report / promote-to-candidate operation.
  void Subtract(uint64_t vkey, int64_t amount) {
    if (blocked_) {
      blocked_->Subtract(vkey, amount);
    } else {
      classic_->Subtract(vkey, amount);
    }
  }

  void Clear() {
    if (blocked_) {
      blocked_->Clear();
    } else {
      classic_->Clear();
    }
  }

  bool Mergeable(const VaguePart& other) const {
    if (layout_ != other.layout_) return false;
    return blocked_ ? blocked_->Mergeable(*other.blocked_)
                    : classic_->Mergeable(*other.classic_);
  }
  bool MergeFrom(const VaguePart& other) {
    if (layout_ != other.layout_) return false;
    return blocked_ ? blocked_->MergeFrom(*other.blocked_)
                    : classic_->MergeFrom(*other.classic_);
  }
  void AppendTo(std::vector<uint8_t>* out) const {
    if (blocked_) {
      blocked_->AppendTo(out);
    } else {
      classic_->AppendTo(out);
    }
  }
  bool ReadFrom(ByteReader* reader) {
    return blocked_ ? blocked_->ReadFrom(reader) : classic_->ReadFrom(reader);
  }

 private:
  VagueLayout layout_;
  std::optional<SketchT> classic_;
  std::optional<BlockedT> blocked_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_VAGUE_PART_H_
