// Vague part of QuantileFilter (Sec III-A/III-B).
//
// A thin, typed wrapper around a signed sketch (Count sketch by default;
// Count-Min for the paper's "Choice 2" ablation) that speaks Qweights:
// it converts an item's (value, criteria) into an unbiased integer weight
// and offers the estimate / reset-after-report operations Algorithm 1 needs.

#ifndef QUANTILEFILTER_CORE_VAGUE_PART_H_
#define QUANTILEFILTER_CORE_VAGUE_PART_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.h"
#include "common/serialize.h"
#include "core/criteria.h"
#include "core/qweight.h"
#include "obs/instrument.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"

namespace qf {

template <typename SketchT>
class VaguePart {
 public:
  VaguePart(size_t memory_bytes, int depth, uint64_t seed)
      : sketch_(SketchT::FromBytes(memory_bytes, depth, seed)) {}

  int depth() const { return sketch_.depth(); }
  size_t width() const { return sketch_.width(); }
  size_t MemoryBytes() const { return sketch_.MemoryBytes(); }

  /// Inserts one item for `vkey` and returns the post-insert Qweight
  /// estimate (Algorithm 1 lines 3-5). Integer counters receive the
  /// unbiased probabilistically-rounded weight; floating-point counters
  /// (the paper's alternative design) accumulate the exact weight.
  int64_t Insert(uint64_t vkey, bool abnormal, const Criteria& criteria,
                 Rng& rng) {
    if constexpr (SketchT::kFloatingCounters) {
      sketch_.AddReal(vkey, ExactItemQweight(abnormal, criteria));
    } else {
      sketch_.Add(vkey, DrawItemQweight(abnormal, criteria, rng));
    }
    const int64_t estimate = sketch_.Estimate(vkey);
#if QF_METRICS
    // Saturation health signal: a median estimate pinned at the counter
    // max means at least half the rows clamped — the budget is too small
    // for the load (DESIGN.md §10). Only sketches with a uniform counter
    // type expose a single saturation point (TowerSketch's rows differ in
    // width, so it opts out by not defining counter_type).
    if constexpr (!SketchT::kFloatingCounters &&
                  requires { typename SketchT::counter_type; }) {
      if (estimate >=
          std::numeric_limits<typename SketchT::counter_type>::max()) {
        ++obs::Tally().vague_saturations;
      }
    }
#endif
    return estimate;
  }

  /// Adds a raw integer Qweight (used when a candidate entry is demoted
  /// into the vague part during election).
  void Add(uint64_t vkey, int64_t qweight) { sketch_.Add(vkey, qweight); }

  /// Prefetches the d counter cells `vkey` maps to, ahead of a possible
  /// Insert/Estimate (the batched insert window issues this for every item
  /// while earlier items are still draining).
  void Prefetch(uint64_t vkey) const { sketch_.Prefetch(vkey); }

  int64_t Estimate(uint64_t vkey) const { return sketch_.Estimate(vkey); }

  /// Removes `amount` of estimated Qweight from `vkey`'s counters — the
  /// reset-after-report / promote-to-candidate operation.
  void Subtract(uint64_t vkey, int64_t amount) {
    sketch_.Subtract(vkey, amount);
  }

  void Clear() { sketch_.Clear(); }

  bool Mergeable(const VaguePart& other) const {
    return sketch_.Mergeable(other.sketch_);
  }
  bool MergeFrom(const VaguePart& other) {
    return sketch_.MergeFrom(other.sketch_);
  }
  void AppendTo(std::vector<uint8_t>* out) const { sketch_.AppendTo(out); }
  bool ReadFrom(ByteReader* reader) { return sketch_.ReadFrom(reader); }

 private:
  SketchT sketch_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_VAGUE_PART_H_
