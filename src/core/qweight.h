// Qweight arithmetic (Sec III-A) and the exact-theory helpers that the
// property tests and the exact oracle build on.
//
// The central identity (proved in the paper and re-verified by our tests):
// for a key with `a` items above T and `b` items at or below T (n = a + b),
//     q_{eps,delta} > T   <=>   Qweight = (delta/(1-delta)) * a - b
//                                       >= eps / (1-delta)
//                         <=>   b <= delta * n - eps.
// The last form needs only two integers per key, which is what makes an
// exact zero-error detector feasible (see baseline/exact_detector.h).

#ifndef QUANTILEFILTER_CORE_QWEIGHT_H_
#define QUANTILEFILTER_CORE_QWEIGHT_H_

#include <cstdint>

#include "common/random.h"
#include "core/criteria.h"
#include "obs/instrument.h"

namespace qf {

/// Exact (real-valued) Qweight of one item.
inline double ExactItemQweight(bool abnormal, const Criteria& c) {
  return abnormal ? c.positive_weight() : -1.0;
}

/// Integer item Qweight with unbiased probabilistic rounding: the integer
/// part is added deterministically and the fractional part with matching
/// probability (paper Sec III-A, Technical Details). Expected value equals
/// ExactItemQweight; variance of the rounding is frac*(1-frac) < 0.25.
inline int64_t DrawItemQweight(bool abnormal, const Criteria& c, Rng& rng) {
  if (!abnormal) return -1;
  int64_t w = c.positive_floor();
  if (c.positive_frac() > 0.0) {
    // The draw order and count are identical with and without QF_METRICS,
    // so instrumented and plain builds stay bit-compatible.
    const bool up = rng.Bernoulli(c.positive_frac());
    if (up) ++w;
    QF_OBS(++(up ? obs::Tally().rounding_up : obs::Tally().rounding_down));
  }
  return w;
}

/// Exact Qweight of a key from its below/above counts.
inline double ExactQweight(uint64_t n_below, uint64_t n_above,
                           const Criteria& c) {
  return c.positive_weight() * static_cast<double>(n_above) -
         static_cast<double>(n_below);
}

/// Exact Definition-4 test: is the (eps, delta)-quantile of a value multiset
/// with `n_below` values <= T and `n_above` values > T strictly above T?
/// Evaluated in the count domain (b <= delta*n - eps), which is equivalent to
/// indexing the sorted multiset and needs no stored values.
inline bool QuantileOutstanding(uint64_t n_below, uint64_t n_above,
                                const Criteria& c) {
  const double n = static_cast<double>(n_below + n_above);
  return static_cast<double>(n_below) <= c.delta() * n - c.eps();
}

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_QWEIGHT_H_
