// Smooth sliding-window detection via filter rotation (extension).
//
// The paper's periodic reset (Sec III-B) forgets *everything* at the window
// boundary, so an anomaly whose evidence straddles the boundary can escape.
// The classic fix is two staggered filters: a "primary" that answers, and a
// "warmup" started half a window later that sees the same items. Every half
// window the primary retires and the warmup — which by then has exactly half
// a window of history — takes over. Every item is therefore judged against
// between W/2 and W items of history, with no total-amnesia instant.
//
// Cost: 2x insertion work and 2x memory versus one filter of the same
// budget (each half gets budget/2 here, keeping the total equal to the
// configured budget).

#ifndef QUANTILEFILTER_CORE_ROTATING_FILTER_H_
#define QUANTILEFILTER_CORE_ROTATING_FILTER_H_

#include <cstdint>
#include <utility>

#include "core/quantile_filter.h"

namespace qf {

template <typename SketchT = CountSketch<int16_t>>
class RotatingQuantileFilter {
 public:
  using Filter = QuantileFilter<SketchT>;

  /// `window_items`: maximum history any item is judged against (the
  /// effective window is [window_items/2, window_items]). Must be >= 2.
  RotatingQuantileFilter(const typename Filter::Options& options,
                         const Criteria& criteria, uint64_t window_items)
      : criteria_(criteria),
        half_window_(window_items < 2 ? 1 : window_items / 2),
        primary_(HalfBudget(options, 1), criteria),
        warmup_(HalfBudget(options, 2), criteria) {}

  uint64_t half_window() const { return half_window_; }
  uint64_t rotations() const { return rotations_; }
  size_t MemoryBytes() const {
    return primary_.MemoryBytes() + warmup_.MemoryBytes();
  }

  bool Insert(uint64_t key, double value) {
    return Insert(key, value, criteria_);
  }

  bool Insert(uint64_t key, double value, const Criteria& criteria) {
    if (items_since_rotation_ >= half_window_) Rotate();
    ++items_since_rotation_;
    // The warmup filter absorbs the item but its verdicts are ignored; its
    // state must mirror the primary's future, so reported keys reset there
    // too (same key, same criteria -> it usually reports in lockstep).
    bool reported = primary_.Insert(key, value, criteria);
    bool warm_reported = warmup_.Insert(key, value, criteria);
    if (reported && !warm_reported) {
      // Keep the warmup consistent with the primary's reset semantics.
      warmup_.Delete(key);
    }
    return reported;
  }

  int64_t QueryQweight(uint64_t key) const {
    return primary_.QueryQweight(key);
  }

  void Delete(uint64_t key) {
    primary_.Delete(key);
    warmup_.Delete(key);
  }

  void Reset() {
    primary_.Reset();
    warmup_.Reset();
    items_since_rotation_ = 0;
  }

 private:
  static typename Filter::Options HalfBudget(
      const typename Filter::Options& options, int which) {
    typename Filter::Options half = options;
    half.memory_bytes = options.memory_bytes / 2;
    half.seed = Mix64(options.seed + 0x9E37 * which);
    return half;
  }

  void Rotate() {
    ++rotations_;
    items_since_rotation_ = 0;
    // The warmup (half a window of history) becomes the primary; the old
    // primary restarts empty as the new warmup.
    std::swap(primary_, warmup_);
    warmup_.Reset();
  }

  Criteria criteria_;
  uint64_t half_window_;
  Filter primary_;
  Filter warmup_;
  uint64_t items_since_rotation_ = 0;
  uint64_t rotations_ = 0;
};

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_ROTATING_FILTER_H_
