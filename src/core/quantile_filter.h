// QuantileFilter (Sec III): online detection of quantile-outstanding keys.
//
// The filter is the composition of
//   * a candidate part  — exact Qweight counters for elected keys
//     (core/candidate_part.h), and
//   * a vague part      — a signed sketch over everyone else
//     (core/vague_part.h),
// with a candidate-election policy that promotes keys whose estimated
// Qweight beats the weakest resident candidate (Algorithm 2).
//
// Template parameter `SketchT` selects the vague-part engine:
// CountSketch<int16_t> (paper default) or CountMinSketch<int16_t>
// ("Choice 2" ablation). Counter width is selected through the sketch type.
//
// Per-item cost is O(b + d) with b = bucket entries and d = sketch rows —
// a small constant; there is no separate query phase, which is the paper's
// [R1] fast-online-computation requirement.
//
// Two insertion interfaces exist:
//   * Insert(key, value)       — one item at a time;
//   * InsertBatch(items, cb)   — a span of items, processed through a
//     ~32-item pre-hash window that issues cache prefetches for every
//     item's candidate bucket and vague-part rows before draining the
//     window in stream order. The drained path is the same code as
//     Insert, so reports, statistics, RNG consumption and serialized
//     state are bit-identical between the two interfaces.

#ifndef QUANTILEFILTER_CORE_QUANTILE_FILTER_H_
#define QUANTILEFILTER_CORE_QUANTILE_FILTER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

#include "common/counters.h"
#include "common/crc32.h"
#include "common/serialize.h"
#include "common/random.h"
#include "core/candidate_part.h"
#include "core/criteria.h"
#include "core/vague_part.h"
#include "obs/instrument.h"
#include "stream/item.h"

namespace qf {

/// Candidate-election replacement strategies ("Choice 1", Sec III-D), plus
/// kDecay, an extension in the spirit of HeavyKeeper-style exponential
/// decay: instead of comparing against the newcomer, the weakest resident
/// entry is probabilistically worn down and replaced once it drops below
/// the newcomer — favoring keys with sustained (not just instantaneous)
/// Qweight.
enum class ElectionStrategy {
  kComparative,    // swap iff estimate > weakest candidate (paper default)
  kProbabilistic,  // swap with probability max(est / (est + min), 0)
  kForceful,       // always swap
  kDecay,          // decay the weakest entry; swap once it falls below
};

template <typename SketchT = CountSketch<int16_t>>
class QuantileFilter {
 public:
  struct Options {
    /// Total byte budget, split candidate : vague = candidate_fraction.
    size_t memory_bytes = 256 * 1024;
    /// Share of memory given to the candidate part (paper default 4:1).
    double candidate_fraction = 0.8;
    int vague_depth = 3;        // d, paper default
    int bucket_entries = 6;     // b, paper default
    int fingerprint_bits = 16;  // paper default
    ElectionStrategy election = ElectionStrategy::kComparative;
    /// Vague-part engine: the paper's d-independent-rows layout (kClassic,
    /// kept for the fig-12/ablation benches) or the cache-resident blocked
    /// layout (sketch/blocked_count_sketch.h; one miss per item). Only
    /// integer Count sketch SketchT support kBlocked — others fall back to
    /// classic; vague_layout() reports what is in effect.
    VagueLayout vague_layout = VagueLayout::kClassic;
    uint64_t seed = 0x9F17E60ULL;
  };

  struct Stats {
    uint64_t items = 0;           // items inserted
    uint64_t reports = 0;         // outstanding-key reports emitted
    uint64_t candidate_hits = 0;  // items resolved in the candidate part
    uint64_t admissions = 0;      // items admitted to empty candidate slots
    uint64_t vague_inserts = 0;   // items routed to the vague part
    uint64_t swaps = 0;           // candidate-election swaps
  };

  /// Items pre-hashed per InsertBatch prefetch window. Sized so the window's
  /// outstanding prefetches stay within a typical L1 miss-queue depth while
  /// amortizing the per-window loop overhead.
  static constexpr size_t kBatchWindow = 32;

  QuantileFilter(const Options& options, const Criteria& default_criteria)
      : options_(options),
        default_criteria_(default_criteria),
        candidate_(MakeCandidateOptions(options)),
        vague_(VagueBytes(options), options.vague_depth,
               Mix64(options.seed ^ 0xA60EULL), options.vague_layout),
        rng_(Mix64(options.seed ^ 0xD1CEULL)) {
    QF_OBS(obs::FilterMetrics::Get().candidate_slots.Add(
        candidate_.num_slots()));
  }

  explicit QuantileFilter(const Options& options)
      : QuantileFilter(options, Criteria()) {}

  const Criteria& default_criteria() const { return default_criteria_; }
  /// The vague layout actually in effect (a kBlocked request on an
  /// unsupported SketchT falls back to kClassic).
  VagueLayout vague_layout() const { return vague_.layout(); }
  const Stats& stats() const { return stats_; }

  /// RNG snapshot for durable checkpoints (src/durable/checkpoint.h).
  /// SerializeState deliberately excludes rng_ so "QFS2"/"QFS4" blobs stay
  /// byte-compatible across builds, but crash recovery restores a blob and
  /// then replays the WAL tail — the replayed probabilistic-rounding draws
  /// only match the pre-crash filter if the generator state rides along.
  void GetRngState(uint64_t out[4]) const { rng_.GetState(out); }
  void SetRngState(const uint64_t in[4]) { rng_.SetState(in); }
  const CandidatePart& candidate_part() const { return candidate_; }
  size_t MemoryBytes() const {
    return candidate_.MemoryBytes() + vague_.MemoryBytes();
  }

  /// Processes one item under the default criteria. Returns true iff this
  /// item caused `key` to be reported as outstanding (the caller holds the
  /// full key, so real-time reporting needs no reverse fingerprint lookup).
  bool Insert(uint64_t key, double value) {
    return Insert(key, value, default_criteria_);
  }

  /// Processes one item under caller-supplied criteria (Sec III-C: distinct
  /// criteria per key, supplied alongside each item).
  bool Insert(uint64_t key, double value, const Criteria& criteria) {
    const uint64_t h = candidate_.KeyHash(key);
    return InsertHashed(candidate_.FingerprintFromHash(h),
                        candidate_.BucketFromHash(h),
                        criteria.ValueIsAbnormal(value), criteria);
  }

  /// Batched insertion: processes `items` in stream order through a
  /// kBatchWindow-item pre-hash + prefetch window. For every reported item,
  /// `on_report(index, item)` is invoked with the item's position within
  /// `items` (reports fire in stream order). Returns the number of reports.
  ///
  /// Equivalence guarantee: the drain stage runs the identical per-item
  /// logic (and RNG draw order) as Insert, so a filter fed through
  /// InsertBatch ends bit-identical — same reports, stats and serialized
  /// state — to one fed the same items through Insert.
  template <typename ReportFn>
  size_t InsertBatch(std::span<const Item> items, const Criteria& criteria,
                     ReportFn&& on_report) {
    struct Prehashed {
      uint32_t fp;
      uint32_t bucket;
      bool abnormal;
    };
    Prehashed window[kBatchWindow];
    size_t reports = 0;
    size_t pos = 0;
    while (pos < items.size()) {
      const size_t n = std::min(kBatchWindow, items.size() - pos);
      // Stage 1: hash the window and issue prefetches. The candidate bucket
      // is touched by every item; the vague storage only by bucket-full
      // items, but prefetching it unconditionally costs little and hides
      // the misses that dominate large-budget configurations — d random
      // rows under the classic layout, the single 64-byte block under the
      // blocked layout (VaguePart::Prefetch dispatches).
      for (size_t i = 0; i < n; ++i) {
        const Item& item = items[pos + i];
        Prehashed& p = window[i];
        const uint64_t h = candidate_.KeyHash(item.key);
        p.fp = candidate_.FingerprintFromHash(h);
        p.bucket = candidate_.BucketFromHash(h);
        p.abnormal = criteria.ValueIsAbnormal(item.value);
        candidate_.PrefetchBucket(p.bucket);
        vague_.Prefetch(candidate_.VagueKey(p.bucket, p.fp));
      }
      // Stage 2: drain in stream order through the scalar path.
      for (size_t i = 0; i < n; ++i) {
        if (InsertHashed(window[i].fp, window[i].bucket, window[i].abnormal,
                         criteria)) {
          ++reports;
          on_report(pos + i, items[pos + i]);
        }
      }
      pos += n;
    }
    return reports;
  }

  /// InsertBatch overloads that drop the per-report callback / use the
  /// default criteria. Return the number of reports.
  size_t InsertBatch(std::span<const Item> items, const Criteria& criteria) {
    return InsertBatch(items, criteria, [](size_t, const Item&) {});
  }
  size_t InsertBatch(std::span<const Item> items) {
    return InsertBatch(items, default_criteria_);
  }

  /// Current Qweight estimate for `key`: exact if resident in the candidate
  /// part, otherwise the vague-part estimate. (The "query" operation of
  /// Sec III-B.)
  int64_t QueryQweight(uint64_t key) const {
    const uint64_t h = candidate_.KeyHash(key);
    const uint32_t fp = candidate_.FingerprintFromHash(h);
    const uint32_t bucket = candidate_.BucketFromHash(h);
    if (const int64_t slot = candidate_.Find(bucket, fp);
        slot != CandidatePart::kNone) {
      return candidate_.qweight(slot);
    }
    return vague_.Estimate(candidate_.VagueKey(bucket, fp));
  }

  /// True iff `key` currently occupies a candidate slot, i.e. its Qweight
  /// is tracked exactly rather than estimated by the vague part (the
  /// candidate-status half of the serving layer's QUERY frame).
  bool IsCandidate(uint64_t key) const {
    const uint64_t h = candidate_.KeyHash(key);
    return candidate_.Find(candidate_.BucketFromHash(h),
                           candidate_.FingerprintFromHash(h)) !=
           CandidatePart::kNone;
  }

  /// Forgets `key`'s accumulated Qweight (the "delete" operation; used to
  /// change a key's criteria: delete, then insert under the new criteria).
  void Delete(uint64_t key) {
    const uint64_t h = candidate_.KeyHash(key);
    const uint32_t fp = candidate_.FingerprintFromHash(h);
    const uint32_t bucket = candidate_.BucketFromHash(h);
    if (const int64_t slot = candidate_.Find(bucket, fp);
        slot != CandidatePart::kNone) {
      candidate_.set_qweight(slot, 0);
      return;
    }
    const uint64_t vkey = candidate_.VagueKey(bucket, fp);
    vague_.Subtract(vkey, vague_.Estimate(vkey));
  }

  /// A dashboard view of one candidate entry. Only the fingerprint is
  /// known (the paper's design deliberately drops full keys); callers that
  /// need key identities correlate via reports, which happen on arrival
  /// while the key is still in hand.
  struct CandidateView {
    uint32_t bucket = 0;
    uint32_t fingerprint = 0;
    int32_t qweight = 0;
  };

  /// The `k` candidate entries with the highest Qweights — the keys closest
  /// to (or freshly past) a report, for monitoring dashboards.
  std::vector<CandidateView> HottestCandidates(size_t k) const {
    std::vector<CandidateView> views;
    const int entries = candidate_.bucket_entries();
    views.reserve(candidate_.num_slots());
    for (size_t i = 0; i < candidate_.num_slots(); ++i) {
      const CandidatePart::Entry e =
          candidate_.GetEntry(static_cast<int64_t>(i));
      if (e.empty()) continue;
      views.push_back(CandidateView{
          static_cast<uint32_t>(i / static_cast<size_t>(entries)),
          e.fingerprint, e.qweight});
    }
    std::sort(views.begin(), views.end(),
              [](const CandidateView& a, const CandidateView& b) {
                return a.qweight > b.qweight;
              });
    if (views.size() > k) views.resize(k);
    return views;
  }

  /// Clears all state (the periodic "reset" operation of Sec III-B).
  void Reset() {
    candidate_.Clear();
    vague_.Clear();
  }

  /// Resets every Stats field to zero. Any deltas not yet published to the
  /// global metrics counters are flushed first, so ClearStats never makes a
  /// monotone `qf_filter_*_total` counter lose increments.
  void ClearStats() {
    FlushMetrics();
    stats_ = Stats{};
#if QF_METRICS
    metrics_flushed_ = Stats{};
#endif
  }

  /// Inserts between automatic metric flushes (power of two).
  static constexpr uint64_t kMetricsFlushItems = 4096;

  /// Publishes the per-instance Stats deltas accumulated since the last
  /// flush into the global `qf_filter_*` counters, and drains the calling
  /// thread's hot tallies (rounding/saturation events). Runs automatically
  /// every kMetricsFlushItems inserts; call explicitly before taking a
  /// snapshot that must include the newest items. No-op when QF_METRICS=0.
  void FlushMetrics() {
#if QF_METRICS
    obs::FilterMetrics& m = obs::FilterMetrics::Get();
    m.items.Add(stats_.items - metrics_flushed_.items);
    m.reports.Add(stats_.reports - metrics_flushed_.reports);
    m.candidate_hits.Add(stats_.candidate_hits -
                         metrics_flushed_.candidate_hits);
    m.admissions.Add(stats_.admissions - metrics_flushed_.admissions);
    m.vague_inserts.Add(stats_.vague_inserts -
                        metrics_flushed_.vague_inserts);
    m.swaps.Add(stats_.swaps - metrics_flushed_.swaps);
    metrics_flushed_ = stats_;
    obs::DrainTally();
#endif
  }

  /// True iff `other` was constructed with structurally identical options
  /// (same budgets, geometry and seeds), so state can be merged/restored.
  bool Compatible(const QuantileFilter& other) const {
    return candidate_.Compatible(other.candidate_) &&
           vague_.Mergeable(other.vague_);
  }

  /// Merges another monitor's state into this one (distributed collection:
  /// per-link monitors ship their filters to a collector). Vague parts add
  /// cell-wise; candidate entries with matching fingerprints sum, and
  /// bucket overflow spills the weakest Qweights into the vague part —
  /// mirroring candidate election. Returns false (no-op) on mismatch.
  bool MergeFrom(const QuantileFilter& other) {
    if (!Compatible(other)) return false;
    vague_.MergeFrom(other.vague_);
    const int entries = candidate_.bucket_entries();
    for (uint32_t b = 0; b < candidate_.num_buckets(); ++b) {
      const size_t base = other.candidate_.SlotBase(b);
      for (int i = 0; i < entries; ++i) {
        const CandidatePart::Entry theirs =
            other.candidate_.GetEntry(static_cast<int64_t>(base) + i);
        if (theirs.empty()) continue;
        MergeCandidateEntry(b, theirs);
      }
    }
    return true;
  }

  /// Checkpoint the full filter state (candidate slots + vague counters),
  /// wrapped in the CRC-32 integrity envelope (common/crc32.h) so blobs
  /// shipped over the network (net/ CONTROL frames) are tamper-evident.
  /// Stats are checkpoint-excluded by design: they are operational telemetry
  /// of this process's run (feeding the qf_filter_* metrics), so a restored
  /// filter reproduces detection behavior while its counters keep describing
  /// the work this instance performed (tests/stats_reset_test.cc).
  std::vector<uint8_t> SerializeState() const {
    std::vector<uint8_t> out;
    const bool blocked = vague_.layout() == VagueLayout::kBlocked;
    // Classic-layout filters keep writing the v2/v3 "QFS2" shape, so their
    // blobs stay byte-compatible with earlier builds. Blocked-layout
    // filters write format v4: a "QFS4" magic plus an explicit layout tag
    // between the candidate and vague payloads (after the candidate
    // payload so the key-mapping scheme tag keeps its offset).
    AppendPod(blocked ? kStateMagicV4 : kStateMagic, &out);
    candidate_.AppendTo(&out);
    if (blocked) {
      AppendPod(static_cast<uint8_t>(vague_.layout()), &out);
    }
    vague_.AppendTo(&out);
    return WrapCrc(std::move(out));
  }

  /// Restores state saved by SerializeState into a filter constructed with
  /// the same options. Returns false (state unchanged or cleared) on
  /// malformed input, a CRC mismatch, geometry mismatch, or a checkpoint
  /// written under an incompatible format/hash scheme — including v1 "QFST"
  /// checkpoints from the modulo-era BucketOf, whose entries cannot be
  /// relocated to their fast-range buckets because only fingerprints are
  /// stored. CRC-less v2 blobs (pre-envelope) are accepted with a warning.
  bool RestoreState(const std::vector<uint8_t>& bytes) {
    CrcStatus crc = CrcStatus::kOk;
    if (!RestoreState(bytes, &crc)) return false;
    if (crc == CrcStatus::kMissing) WarnCrcMissing("QuantileFilter");
    return true;
  }

  /// As above, but reports the envelope status instead of warning, for
  /// callers (ShardedQuantileFilter, tests, the serving layer) that handle
  /// the legacy-blob path themselves.
  bool RestoreState(const std::vector<uint8_t>& bytes, CrcStatus* crc) {
    const uint8_t* payload = nullptr;
    size_t payload_size = 0;
    *crc = UnwrapCrc(bytes, &payload, &payload_size);
    if (*crc == CrcStatus::kCorrupt) return false;
    ByteReader reader(payload, payload_size);
    uint32_t magic = 0;
    if (!reader.Read(&magic)) return false;
    const bool blocked = vague_.layout() == VagueLayout::kBlocked;
    // A v2/v3 blob restores only into a classic-layout filter (which is
    // the only layout that ever wrote it); a v4 blob only into a blocked
    // one. Cross-layout restores fail closed — the counter geometries are
    // incompatible.
    if (magic == kStateMagic) {
      if (blocked) return false;
    } else if (magic == kStateMagicV4) {
      if (!blocked) return false;
    } else {
      return false;
    }
    if (!candidate_.ReadFrom(&reader)) return false;
    if (magic == kStateMagicV4) {
      uint8_t layout_tag = 0;
      if (!reader.Read(&layout_tag) ||
          layout_tag != static_cast<uint8_t>(VagueLayout::kBlocked)) {
        return false;
      }
    }
    if (!vague_.ReadFrom(&reader)) {
      candidate_.Clear();  // half-restored state would be inconsistent
      return false;
    }
    return true;
  }

  /// Warning side of the CRC-less legacy path: stderr note plus the
  /// qf_checkpoint_crc_missing_total counter (when metrics are compiled in).
  static void WarnCrcMissing(const char* what) {
    std::fprintf(stderr,
                 "warning: %s: restoring a CRC-less (pre-envelope) "
                 "checkpoint; integrity not verified\n",
                 what);
    QF_OBS(obs::MetricsRegistry::Global()
               .GetCounter("qf_checkpoint_crc_missing_total",
                           "CRC-less legacy checkpoints accepted on restore")
               .Add(1));
  }

 private:
  // Checkpoint format ids. v2 ("QFS2") added the key-mapping scheme tag to
  // the candidate payload when BucketOf moved from `%` to FastRange64; the
  // v1 magic 0x51465354 ("QFST") identifies modulo-era checkpoints, which
  // RestoreState rejects; v3 wrapped v2 in the CRC envelope (same magic).
  // v4 ("QFS4") is written only by blocked-vague-layout filters and adds a
  // layout tag after the candidate payload — classic filters keep the v2/v3
  // shape so old blobs restore and new classic blobs stay byte-compatible.
  static constexpr uint32_t kStateMagic = 0x51465332;    // "QFS2"
  static constexpr uint32_t kStateMagicV4 = 0x51465334;  // "QFS4"

  /// The per-item state machine (Algorithm 1 + candidate election), shared
  /// verbatim by Insert and the InsertBatch drain stage.
  bool InsertHashed(uint32_t fp, uint32_t bucket, bool abnormal,
                    const Criteria& criteria) {
    ++stats_.items;
    // Metrics publish at batch granularity: one predictable branch per item
    // here, atomics only once per kMetricsFlushItems (QF_METRICS=0 compiles
    // this out entirely).
    QF_OBS(if ((stats_.items & (kMetricsFlushItems - 1)) == 0) {
      FlushMetrics();
    });

    // Case 1: fingerprint already resident -> exact per-entry tracking.
    if (const int64_t slot = candidate_.Find(bucket, fp);
        slot != CandidatePart::kNone) {
      ++stats_.candidate_hits;
      const int32_t qw = SaturatingAdd(
          candidate_.qweight(slot), DrawItemQweight(abnormal, criteria, rng_));
      if (qw >= criteria.report_threshold()) {
        candidate_.set_qweight(slot, 0);
        ++stats_.reports;
        return true;
      }
      candidate_.set_qweight(slot, qw);
      return false;
    }

    // Case 2: room in the bucket -> admit directly.
    if (const int64_t slot = candidate_.FindEmpty(bucket);
        slot != CandidatePart::kNone) {
      ++stats_.admissions;
      const int32_t w =
          ClampToI32(DrawItemQweight(abnormal, criteria, rng_));
      if (w >= criteria.report_threshold()) {
        candidate_.SetSlot(slot, fp, 0);
        ++stats_.reports;
        return true;
      }
      candidate_.SetSlot(slot, fp, w);
      return false;
    }

    // Case 3: bucket full -> vague part, then candidate election.
    ++stats_.vague_inserts;
    const uint64_t vkey = candidate_.VagueKey(bucket, fp);
    const int64_t estimate = vague_.Insert(vkey, abnormal, criteria, rng_);
    if (estimate >= criteria.report_threshold()) {
      vague_.Subtract(vkey, estimate);
      ++stats_.reports;
      return true;
    }

    const int64_t weakest = candidate_.MinSlot(bucket);
    if (ShouldSwap(estimate, weakest)) {
      ++stats_.swaps;
      // Demote the weakest candidate's Qweight into the vague part...
      vague_.Add(candidate_.VagueKey(bucket, candidate_.fingerprint(weakest)),
                 candidate_.qweight(weakest));
      // ...and promote the newcomer, moving its mass out of the sketch.
      vague_.Subtract(vkey, estimate);
      candidate_.SetSlot(weakest, fp, ClampToI32(estimate));
    }
    return false;
  }

  /// Inserts one foreign candidate entry into bucket `b`, following the
  /// same priority rules as candidate election.
  void MergeCandidateEntry(uint32_t b, const CandidatePart::Entry& entry) {
    if (const int64_t slot = candidate_.Find(b, entry.fingerprint);
        slot != CandidatePart::kNone) {
      candidate_.set_qweight(
          slot, SaturatingAdd(candidate_.qweight(slot),
                              static_cast<int64_t>(entry.qweight)));
      return;
    }
    if (const int64_t slot = candidate_.FindEmpty(b);
        slot != CandidatePart::kNone) {
      candidate_.SetSlot(slot, entry.fingerprint, entry.qweight);
      return;
    }
    const int64_t weakest = candidate_.MinSlot(b);
    if (entry.qweight > candidate_.qweight(weakest)) {
      vague_.Add(candidate_.VagueKey(b, candidate_.fingerprint(weakest)),
                 candidate_.qweight(weakest));
      candidate_.SetSlot(weakest, entry.fingerprint, entry.qweight);
    } else {
      vague_.Add(candidate_.VagueKey(b, entry.fingerprint), entry.qweight);
    }
  }

  static CandidatePart::Options MakeCandidateOptions(const Options& o) {
    CandidatePart::Options c;
    c.memory_bytes = static_cast<size_t>(
        static_cast<double>(o.memory_bytes) * o.candidate_fraction);
    c.bucket_entries = o.bucket_entries;
    c.fingerprint_bits = o.fingerprint_bits;
    c.seed = Mix64(o.seed ^ 0xCA4DULL);
    return c;
  }

  static size_t VagueBytes(const Options& o) {
    size_t candidate = static_cast<size_t>(
        static_cast<double>(o.memory_bytes) * o.candidate_fraction);
    size_t rest = o.memory_bytes > candidate ? o.memory_bytes - candidate : 0;
    return rest < 64 ? 64 : rest;
  }

  static int32_t ClampToI32(int64_t v) {
    if (v > INT32_MAX) return INT32_MAX;
    if (v < INT32_MIN) return INT32_MIN;
    return static_cast<int32_t>(v);
  }

  bool ShouldSwap(int64_t estimate, int64_t weakest) {
    switch (options_.election) {
      case ElectionStrategy::kComparative:
        return estimate > candidate_.qweight(weakest);
      case ElectionStrategy::kForceful:
        return true;
      case ElectionStrategy::kProbabilistic: {
        // p = max(est / (est + min), 0), guarding the degenerate denominator.
        const int64_t denom = estimate + candidate_.qweight(weakest);
        if (denom == 0) return estimate > 0;
        const double p =
            static_cast<double>(estimate) / static_cast<double>(denom);
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return rng_.Bernoulli(p);
      }
      case ElectionStrategy::kDecay:
        // Wear the weakest resident down by 1 with probability 1/2 per
        // contender, then compare: residents survive only on sustained
        // Qweight (HeavyKeeper-flavored eviction).
        if (rng_.Bernoulli(0.5)) {
          candidate_.set_qweight(
              weakest,
              SaturatingAdd(candidate_.qweight(weakest), int64_t{-1}));
        }
        return estimate > candidate_.qweight(weakest);
    }
    return false;
  }

  Options options_;
  Criteria default_criteria_;
  CandidatePart candidate_;
  VaguePart<SketchT> vague_;
  Rng rng_;
  Stats stats_;
#if QF_METRICS
  // Stats values already published to the global counters; the next flush
  // adds only the delta, keeping the global totals exact and monotone.
  Stats metrics_flushed_;
#endif
};

/// The paper's default configuration: Count sketch vague part with 16-bit
/// saturating counters, comparative election.
using DefaultQuantileFilter = QuantileFilter<CountSketch<int16_t>>;

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_QUANTILE_FILTER_H_
