// QuantileFilter (Sec III): online detection of quantile-outstanding keys.
//
// The filter is the composition of
//   * a candidate part  — exact Qweight counters for elected keys
//     (core/candidate_part.h), and
//   * a vague part      — a signed sketch over everyone else
//     (core/vague_part.h),
// with a candidate-election policy that promotes keys whose estimated
// Qweight beats the weakest resident candidate (Algorithm 2).
//
// Template parameter `SketchT` selects the vague-part engine:
// CountSketch<int16_t> (paper default) or CountMinSketch<int16_t>
// ("Choice 2" ablation). Counter width is selected through the sketch type.
//
// Per-item cost is O(b + d) with b = bucket entries and d = sketch rows —
// a small constant; there is no separate query phase, which is the paper's
// [R1] fast-online-computation requirement.

#ifndef QUANTILEFILTER_CORE_QUANTILE_FILTER_H_
#define QUANTILEFILTER_CORE_QUANTILE_FILTER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/counters.h"
#include "common/serialize.h"
#include "common/random.h"
#include "core/candidate_part.h"
#include "core/criteria.h"
#include "core/vague_part.h"

namespace qf {

/// Candidate-election replacement strategies ("Choice 1", Sec III-D), plus
/// kDecay, an extension in the spirit of HeavyKeeper-style exponential
/// decay: instead of comparing against the newcomer, the weakest resident
/// entry is probabilistically worn down and replaced once it drops below
/// the newcomer — favoring keys with sustained (not just instantaneous)
/// Qweight.
enum class ElectionStrategy {
  kComparative,    // swap iff estimate > weakest candidate (paper default)
  kProbabilistic,  // swap with probability max(est / (est + min), 0)
  kForceful,       // always swap
  kDecay,          // decay the weakest entry; swap once it falls below
};

template <typename SketchT = CountSketch<int16_t>>
class QuantileFilter {
 public:
  struct Options {
    /// Total byte budget, split candidate : vague = candidate_fraction.
    size_t memory_bytes = 256 * 1024;
    /// Share of memory given to the candidate part (paper default 4:1).
    double candidate_fraction = 0.8;
    int vague_depth = 3;        // d, paper default
    int bucket_entries = 6;     // b, paper default
    int fingerprint_bits = 16;  // paper default
    ElectionStrategy election = ElectionStrategy::kComparative;
    uint64_t seed = 0x9F17E60ULL;
  };

  struct Stats {
    uint64_t items = 0;           // items inserted
    uint64_t reports = 0;         // outstanding-key reports emitted
    uint64_t candidate_hits = 0;  // items resolved in the candidate part
    uint64_t admissions = 0;      // items admitted to empty candidate slots
    uint64_t vague_inserts = 0;   // items routed to the vague part
    uint64_t swaps = 0;           // candidate-election swaps
  };

  QuantileFilter(const Options& options, const Criteria& default_criteria)
      : options_(options),
        default_criteria_(default_criteria),
        candidate_(MakeCandidateOptions(options)),
        vague_(VagueBytes(options), options.vague_depth,
               Mix64(options.seed ^ 0xA60EULL)),
        rng_(Mix64(options.seed ^ 0xD1CEULL)) {}

  explicit QuantileFilter(const Options& options)
      : QuantileFilter(options, Criteria()) {}

  const Criteria& default_criteria() const { return default_criteria_; }
  const Stats& stats() const { return stats_; }
  const CandidatePart& candidate_part() const { return candidate_; }
  size_t MemoryBytes() const {
    return candidate_.MemoryBytes() + vague_.MemoryBytes();
  }

  /// Processes one item under the default criteria. Returns true iff this
  /// item caused `key` to be reported as outstanding (the caller holds the
  /// full key, so real-time reporting needs no reverse fingerprint lookup).
  bool Insert(uint64_t key, double value) {
    return Insert(key, value, default_criteria_);
  }

  /// Processes one item under caller-supplied criteria (Sec III-C: distinct
  /// criteria per key, supplied alongside each item).
  bool Insert(uint64_t key, double value, const Criteria& criteria) {
    ++stats_.items;
    const bool abnormal = criteria.ValueIsAbnormal(value);
    const uint32_t fp = candidate_.FingerprintOf(key);
    const uint32_t bucket = candidate_.BucketOf(key);

    // Case 1: fingerprint already resident -> exact per-entry tracking.
    if (CandidatePart::Entry* entry = candidate_.Find(bucket, fp)) {
      ++stats_.candidate_hits;
      entry->qweight = SaturatingAdd(
          entry->qweight, DrawItemQweight(abnormal, criteria, rng_));
      if (entry->qweight >= criteria.report_threshold()) {
        entry->qweight = 0;
        ++stats_.reports;
        return true;
      }
      return false;
    }

    // Case 2: room in the bucket -> admit directly.
    if (CandidatePart::Entry* empty = candidate_.FindEmpty(bucket)) {
      ++stats_.admissions;
      const int64_t w = DrawItemQweight(abnormal, criteria, rng_);
      *empty = CandidatePart::Entry{fp, ClampToI32(w)};
      if (empty->qweight >= criteria.report_threshold()) {
        empty->qweight = 0;
        ++stats_.reports;
        return true;
      }
      return false;
    }

    // Case 3: bucket full -> vague part, then candidate election.
    ++stats_.vague_inserts;
    const uint64_t vkey = candidate_.VagueKey(bucket, fp);
    const int64_t estimate = vague_.Insert(vkey, abnormal, criteria, rng_);
    if (estimate >= criteria.report_threshold()) {
      vague_.Subtract(vkey, estimate);
      ++stats_.reports;
      return true;
    }

    CandidatePart::Entry* weakest = candidate_.MinEntry(bucket);
    if (ShouldSwap(estimate, weakest)) {
      ++stats_.swaps;
      // Demote the weakest candidate's Qweight into the vague part...
      vague_.Add(candidate_.VagueKey(bucket, weakest->fingerprint),
                 weakest->qweight);
      // ...and promote the newcomer, moving its mass out of the sketch.
      vague_.Subtract(vkey, estimate);
      *weakest = CandidatePart::Entry{fp, ClampToI32(estimate)};
    }
    return false;
  }

  /// Current Qweight estimate for `key`: exact if resident in the candidate
  /// part, otherwise the vague-part estimate. (The "query" operation of
  /// Sec III-B.)
  int64_t QueryQweight(uint64_t key) const {
    const uint32_t fp = candidate_.FingerprintOf(key);
    const uint32_t bucket = candidate_.BucketOf(key);
    if (const CandidatePart::Entry* entry = candidate_.Find(bucket, fp)) {
      return entry->qweight;
    }
    return vague_.Estimate(candidate_.VagueKey(bucket, fp));
  }

  /// Forgets `key`'s accumulated Qweight (the "delete" operation; used to
  /// change a key's criteria: delete, then insert under the new criteria).
  void Delete(uint64_t key) {
    const uint32_t fp = candidate_.FingerprintOf(key);
    const uint32_t bucket = candidate_.BucketOf(key);
    if (CandidatePart::Entry* entry = candidate_.Find(bucket, fp)) {
      entry->qweight = 0;
      return;
    }
    const uint64_t vkey = candidate_.VagueKey(bucket, fp);
    vague_.Subtract(vkey, vague_.Estimate(vkey));
  }

  /// A dashboard view of one candidate entry. Only the fingerprint is
  /// known (the paper's design deliberately drops full keys); callers that
  /// need key identities correlate via reports, which happen on arrival
  /// while the key is still in hand.
  struct CandidateView {
    uint32_t bucket = 0;
    uint32_t fingerprint = 0;
    int32_t qweight = 0;
  };

  /// The `k` candidate entries with the highest Qweights — the keys closest
  /// to (or freshly past) a report, for monitoring dashboards.
  std::vector<CandidateView> HottestCandidates(size_t k) const {
    std::vector<CandidateView> views;
    const auto& slots = candidate_.slots();
    const int entries = candidate_.bucket_entries();
    views.reserve(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].empty()) continue;
      views.push_back(CandidateView{
          static_cast<uint32_t>(i / static_cast<size_t>(entries)),
          slots[i].fingerprint, slots[i].qweight});
    }
    std::sort(views.begin(), views.end(),
              [](const CandidateView& a, const CandidateView& b) {
                return a.qweight > b.qweight;
              });
    if (views.size() > k) views.resize(k);
    return views;
  }

  /// Clears all state (the periodic "reset" operation of Sec III-B).
  void Reset() {
    candidate_.Clear();
    vague_.Clear();
  }

  void ClearStats() { stats_ = Stats{}; }

  /// True iff `other` was constructed with structurally identical options
  /// (same budgets, geometry and seeds), so state can be merged/restored.
  bool Compatible(const QuantileFilter& other) const {
    return candidate_.Compatible(other.candidate_) &&
           vague_.Mergeable(other.vague_);
  }

  /// Merges another monitor's state into this one (distributed collection:
  /// per-link monitors ship their filters to a collector). Vague parts add
  /// cell-wise; candidate entries with matching fingerprints sum, and
  /// bucket overflow spills the weakest Qweights into the vague part —
  /// mirroring candidate election. Returns false (no-op) on mismatch.
  bool MergeFrom(const QuantileFilter& other) {
    if (!Compatible(other)) return false;
    vague_.MergeFrom(other.vague_);
    const int entries = candidate_.bucket_entries();
    for (uint32_t b = 0; b < candidate_.num_buckets(); ++b) {
      const CandidatePart::Entry* theirs = other.candidate_.Bucket(b);
      for (int i = 0; i < entries; ++i) {
        if (theirs[i].empty()) continue;
        MergeCandidateEntry(b, theirs[i]);
      }
    }
    return true;
  }

  /// Checkpoint the full filter state (candidate slots + vague counters).
  std::vector<uint8_t> SerializeState() const {
    std::vector<uint8_t> out;
    AppendPod(kStateMagic, &out);
    candidate_.AppendTo(&out);
    vague_.AppendTo(&out);
    return out;
  }

  /// Restores state saved by SerializeState into a filter constructed with
  /// the same options. Returns false (state unchanged or cleared) on
  /// malformed input or geometry mismatch.
  bool RestoreState(const std::vector<uint8_t>& bytes) {
    ByteReader reader(bytes);
    uint32_t magic = 0;
    if (!reader.Read(&magic) || magic != kStateMagic) return false;
    if (!candidate_.ReadFrom(&reader)) return false;
    if (!vague_.ReadFrom(&reader)) {
      candidate_.Clear();  // half-restored state would be inconsistent
      return false;
    }
    return true;
  }

 private:
  static constexpr uint32_t kStateMagic = 0x51465354;  // "QFST"

  /// Inserts one foreign candidate entry into bucket `b`, following the
  /// same priority rules as candidate election.
  void MergeCandidateEntry(uint32_t b, const CandidatePart::Entry& entry) {
    if (CandidatePart::Entry* mine =
            candidate_.Find(b, entry.fingerprint)) {
      mine->qweight = SaturatingAdd(mine->qweight,
                                    static_cast<int64_t>(entry.qweight));
      return;
    }
    if (CandidatePart::Entry* empty = candidate_.FindEmpty(b)) {
      *empty = entry;
      return;
    }
    CandidatePart::Entry* weakest = candidate_.MinEntry(b);
    if (entry.qweight > weakest->qweight) {
      vague_.Add(candidate_.VagueKey(b, weakest->fingerprint),
                 weakest->qweight);
      *weakest = entry;
    } else {
      vague_.Add(candidate_.VagueKey(b, entry.fingerprint), entry.qweight);
    }
  }

  static CandidatePart::Options MakeCandidateOptions(const Options& o) {
    CandidatePart::Options c;
    c.memory_bytes = static_cast<size_t>(
        static_cast<double>(o.memory_bytes) * o.candidate_fraction);
    c.bucket_entries = o.bucket_entries;
    c.fingerprint_bits = o.fingerprint_bits;
    c.seed = Mix64(o.seed ^ 0xCA4DULL);
    return c;
  }

  static size_t VagueBytes(const Options& o) {
    size_t candidate = static_cast<size_t>(
        static_cast<double>(o.memory_bytes) * o.candidate_fraction);
    size_t rest = o.memory_bytes > candidate ? o.memory_bytes - candidate : 0;
    return rest < 64 ? 64 : rest;
  }

  static int32_t ClampToI32(int64_t v) {
    if (v > INT32_MAX) return INT32_MAX;
    if (v < INT32_MIN) return INT32_MIN;
    return static_cast<int32_t>(v);
  }

  bool ShouldSwap(int64_t estimate, CandidatePart::Entry* weakest) {
    switch (options_.election) {
      case ElectionStrategy::kComparative:
        return estimate > weakest->qweight;
      case ElectionStrategy::kForceful:
        return true;
      case ElectionStrategy::kProbabilistic: {
        // p = max(est / (est + min), 0), guarding the degenerate denominator.
        const int64_t denom = estimate + weakest->qweight;
        if (denom == 0) return estimate > 0;
        const double p =
            static_cast<double>(estimate) / static_cast<double>(denom);
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return rng_.Bernoulli(p);
      }
      case ElectionStrategy::kDecay:
        // Wear the weakest resident down by 1 with probability 1/2 per
        // contender, then compare: residents survive only on sustained
        // Qweight (HeavyKeeper-flavored eviction).
        if (rng_.Bernoulli(0.5)) {
          weakest->qweight = SaturatingAdd(weakest->qweight, int64_t{-1});
        }
        return estimate > weakest->qweight;
    }
    return false;
  }

  Options options_;
  Criteria default_criteria_;
  CandidatePart candidate_;
  VaguePart<SketchT> vague_;
  Rng rng_;
  Stats stats_;
};

/// The paper's default configuration: Count sketch vague part with 16-bit
/// saturating counters, comparative election.
using DefaultQuantileFilter = QuantileFilter<CountSketch<int16_t>>;

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_QUANTILE_FILTER_H_
