// Candidate part of QuantileFilter (Sec III-B).
//
// An array of m buckets, each holding up to b entries of
// <key fingerprint, integer Qweight counter>. Keys that the election
// strategy considers likely-outstanding live here and get exact (per-entry)
// Qweight tracking, which removes hash-collision noise for precisely the
// keys that matter for reporting.

#ifndef QUANTILEFILTER_CORE_CANDIDATE_PART_H_
#define QUANTILEFILTER_CORE_CANDIDATE_PART_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/memory.h"
#include "common/serialize.h"

namespace qf {

class CandidatePart {
 public:
  struct Options {
    size_t memory_bytes = 64 * 1024;
    int bucket_entries = 6;      // paper default b = 6
    int fingerprint_bits = 16;   // paper default: 16-bit fingerprints
    uint64_t seed = 0x5EEDCA4D;
  };

  /// One slot. fingerprint == 0 marks an empty slot (Fingerprint() never
  /// returns 0 for a real key).
  struct Entry {
    uint32_t fingerprint = 0;
    int32_t qweight = 0;

    bool empty() const { return fingerprint == 0; }
  };

  explicit CandidatePart(const Options& options)
      : bucket_entries_(options.bucket_entries < 1 ? 1
                                                   : options.bucket_entries),
        fingerprint_bits_(options.fingerprint_bits < 1
                              ? 1
                              : (options.fingerprint_bits > 32
                                     ? 32
                                     : options.fingerprint_bits)),
        seed_(options.seed),
        num_buckets_(ElemsForBudget(options.memory_bytes,
                                    sizeof(Entry) * bucket_entries_, 1)),
        slots_(num_buckets_ * bucket_entries_) {}

  size_t num_buckets() const { return num_buckets_; }
  int bucket_entries() const { return bucket_entries_; }
  int fingerprint_bits() const { return fingerprint_bits_; }
  size_t MemoryBytes() const { return slots_.size() * sizeof(Entry); }

  uint32_t BucketOf(uint64_t key) const {
    uint64_t h = HashKey(key, seed_);
    return static_cast<uint32_t>(h % num_buckets_);
  }

  uint32_t FingerprintOf(uint64_t key) const {
    return Fingerprint(key, seed_ ^ 0xF1A9F1A9F1A9F1A9ULL, fingerprint_bits_);
  }

  /// The identifier under which a (bucket, fingerprint) pair is inserted
  /// into the vague part: the paper replaces h_i(x) with h_i(fp + h_b(x))
  /// because the full key is unknown once only the fingerprint is stored.
  uint64_t VagueKey(uint32_t bucket, uint32_t fp) const {
    return (static_cast<uint64_t>(bucket) << fingerprint_bits_) |
           static_cast<uint64_t>(fp);
  }

  /// Slot holding `fp` in `bucket`, or nullptr.
  Entry* Find(uint32_t bucket, uint32_t fp) {
    Entry* base = BucketBase(bucket);
    for (int i = 0; i < bucket_entries_; ++i) {
      if (base[i].fingerprint == fp) return &base[i];
    }
    return nullptr;
  }
  const Entry* Find(uint32_t bucket, uint32_t fp) const {
    return const_cast<CandidatePart*>(this)->Find(bucket, fp);
  }

  /// First empty slot in `bucket`, or nullptr if the bucket is full.
  Entry* FindEmpty(uint32_t bucket) {
    Entry* base = BucketBase(bucket);
    for (int i = 0; i < bucket_entries_; ++i) {
      if (base[i].empty()) return &base[i];
    }
    return nullptr;
  }

  /// Entry with the smallest Qweight in a full `bucket` (the eviction
  /// victim for candidate election).
  Entry* MinEntry(uint32_t bucket) {
    Entry* base = BucketBase(bucket);
    Entry* best = &base[0];
    for (int i = 1; i < bucket_entries_; ++i) {
      if (base[i].qweight < best->qweight) best = &base[i];
    }
    return best;
  }

  /// All slots (for inspection in tests and stats).
  const std::vector<Entry>& slots() const { return slots_; }

  /// Fraction of slots currently occupied.
  double Occupancy() const {
    size_t used = 0;
    for (const Entry& e : slots_) used += e.empty() ? 0 : 1;
    return slots_.empty() ? 0.0
                          : static_cast<double>(used) /
                                static_cast<double>(slots_.size());
  }

  void Clear() { slots_.assign(slots_.size(), Entry{}); }

  /// Mutable view of a bucket's `bucket_entries()` slots (for merging).
  Entry* MutableBucket(uint32_t bucket) { return BucketBase(bucket); }
  const Entry* Bucket(uint32_t bucket) const {
    return const_cast<CandidatePart*>(this)->BucketBase(bucket);
  }

  /// True iff `other` was built with identical structure and hashing, so
  /// entries are positionally and fingerprint-compatible.
  bool Compatible(const CandidatePart& other) const {
    return num_buckets_ == other.num_buckets_ &&
           bucket_entries_ == other.bucket_entries_ &&
           fingerprint_bits_ == other.fingerprint_bits_ &&
           seed_ == other.seed_;
  }

  /// Checkpointing of the slot array.
  void AppendTo(std::vector<uint8_t>* out) const {
    AppendPod(static_cast<uint64_t>(num_buckets_), out);
    AppendPod(static_cast<uint32_t>(bucket_entries_), out);
    AppendVector(slots_, out);
  }
  bool ReadFrom(ByteReader* reader) {
    uint64_t buckets = 0;
    uint32_t entries = 0;
    std::vector<Entry> slots;
    if (!reader->Read(&buckets) || !reader->Read(&entries) ||
        !reader->ReadVector(&slots)) {
      return false;
    }
    if (buckets != num_buckets_ ||
        static_cast<int>(entries) != bucket_entries_ ||
        slots.size() != slots_.size()) {
      return false;
    }
    slots_ = std::move(slots);
    return true;
  }

 private:
  Entry* BucketBase(uint32_t bucket) {
    return &slots_[static_cast<size_t>(bucket) * bucket_entries_];
  }

  int bucket_entries_;
  int fingerprint_bits_;
  uint64_t seed_;
  size_t num_buckets_;
  std::vector<Entry> slots_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_CANDIDATE_PART_H_
