// Candidate part of QuantileFilter (Sec III-B).
//
// An array of m buckets, each holding up to b entries of
// <key fingerprint, integer Qweight counter>. Keys that the election
// strategy considers likely-outstanding live here and get exact (per-entry)
// Qweight tracking, which removes hash-collision noise for precisely the
// keys that matter for reporting.
//
// Storage is struct-of-arrays (F14 / cuckoo-filter style): a bucket's
// fingerprints are contiguous, so Find probes all b entries with a single
// vector compare (common/simd.h) instead of a scalar scan, and the Qweight
// counters live in a parallel array touched only on a hit. Bucket indexing
// uses Lemire's multiply-shift fast range (no hardware division). Slots are
// addressed by index; `kNone` marks "not found".

#ifndef QUANTILEFILTER_CORE_CANDIDATE_PART_H_
#define QUANTILEFILTER_CORE_CANDIDATE_PART_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/memory.h"
#include "common/serialize.h"
#include "common/simd.h"

namespace qf {

class CandidatePart {
 public:
  struct Options {
    size_t memory_bytes = 64 * 1024;
    int bucket_entries = 6;      // paper default b = 6
    int fingerprint_bits = 16;   // paper default: 16-bit fingerprints
    uint64_t seed = 0x5EEDCA4D;
  };

  /// Interleaved view of one slot, used for serialization, merging and
  /// inspection. fingerprint == 0 marks an empty slot (Fingerprint() never
  /// returns 0 for a real key).
  struct Entry {
    uint32_t fingerprint = 0;
    int32_t qweight = 0;

    bool empty() const { return fingerprint == 0; }
  };

  /// "No such slot" result of Find / FindEmpty.
  static constexpr int64_t kNone = -1;

  explicit CandidatePart(const Options& options)
      : bucket_entries_(options.bucket_entries < 1 ? 1
                                                   : options.bucket_entries),
        fingerprint_bits_(options.fingerprint_bits < 1
                              ? 1
                              : (options.fingerprint_bits > 32
                                     ? 32
                                     : options.fingerprint_bits)),
        seed_(options.seed),
        num_buckets_(ElemsForBudget(options.memory_bytes,
                                    sizeof(Entry) * bucket_entries_, 1)),
        fp_mask_((fingerprint_bits_ >= 32) ? 0xFFFFFFFFu
                                           : ((1u << fingerprint_bits_) - 1u)),
        num_slots_(num_buckets_ * bucket_entries_),
        fps_(num_slots_ + kFindU32Pad, 0u),
        qweights_(num_slots_, 0) {}

  size_t num_buckets() const { return num_buckets_; }
  int bucket_entries() const { return bucket_entries_; }
  int fingerprint_bits() const { return fingerprint_bits_; }
  size_t num_slots() const { return num_slots_; }
  size_t MemoryBytes() const { return num_slots_ * sizeof(Entry); }

  /// Single-hash probe seam (kKeyMappingScheme = 3): ONE HashKey call
  /// yields both coordinates of a key's probe. The bucket comes from the
  /// high hash bits (FastRange64's multiply keeps only the top of the
  /// product) and the fingerprint from the low 32, so the two stay
  /// effectively independent while every probe path — scalar insert, the
  /// batched prehash window, queries, deletes — pays one Mix64 instead of
  /// two. BucketFromHash reproduces scheme-2 bucket placement bit-exactly;
  /// fingerprints changed, which is why the mapping scheme was bumped.
  uint64_t KeyHash(uint64_t key) const { return HashKey(key, seed_); }

  uint32_t BucketFromHash(uint64_t h) const {
    return static_cast<uint32_t>(FastRange64(h, num_buckets_));
  }

  /// Low 32 bits of the key hash, masked to fingerprint_bits; never 0
  /// (0 marks an empty slot), matching Fingerprint()'s convention.
  uint32_t FingerprintFromHash(uint64_t h) const {
    const uint32_t fp = static_cast<uint32_t>(h) & fp_mask_;
    return fp == 0 ? 1u : fp;
  }

  uint32_t BucketOf(uint64_t key) const { return BucketFromHash(KeyHash(key)); }

  uint32_t FingerprintOf(uint64_t key) const {
    return FingerprintFromHash(KeyHash(key));
  }

  /// The identifier under which a (bucket, fingerprint) pair is inserted
  /// into the vague part: the paper replaces h_i(x) with h_i(fp + h_b(x))
  /// because the full key is unknown once only the fingerprint is stored.
  uint64_t VagueKey(uint32_t bucket, uint32_t fp) const {
    return (static_cast<uint64_t>(bucket) << fingerprint_bits_) |
           static_cast<uint64_t>(fp);
  }

  /// Index of the first slot of `bucket`.
  size_t SlotBase(uint32_t bucket) const {
    return static_cast<size_t>(bucket) * bucket_entries_;
  }

  /// Slot index holding `fp` in `bucket`, or kNone. One vector compare.
  int64_t Find(uint32_t bucket, uint32_t fp) const {
    const size_t base = SlotBase(bucket);
    const int i = FindU32(fps_.data() + base, bucket_entries_, fp);
    return i < 0 ? kNone : static_cast<int64_t>(base) + i;
  }

  /// First empty slot in `bucket`, or kNone if the bucket is full.
  int64_t FindEmpty(uint32_t bucket) const { return Find(bucket, 0u); }

  /// Slot with the smallest Qweight in a full `bucket` (the eviction
  /// victim for candidate election). First minimum wins on ties.
  int64_t MinSlot(uint32_t bucket) const {
    const size_t base = SlotBase(bucket);
    size_t best = base;
    for (int i = 1; i < bucket_entries_; ++i) {
      if (qweights_[base + i] < qweights_[best]) best = base + i;
    }
    return static_cast<int64_t>(best);
  }

  uint32_t fingerprint(int64_t slot) const {
    return fps_[static_cast<size_t>(slot)];
  }
  int32_t qweight(int64_t slot) const {
    return qweights_[static_cast<size_t>(slot)];
  }
  void set_qweight(int64_t slot, int32_t v) {
    qweights_[static_cast<size_t>(slot)] = v;
  }
  void SetSlot(int64_t slot, uint32_t fp, int32_t qw) {
    fps_[static_cast<size_t>(slot)] = fp;
    qweights_[static_cast<size_t>(slot)] = qw;
  }
  Entry GetEntry(int64_t slot) const {
    return Entry{fps_[static_cast<size_t>(slot)],
                 qweights_[static_cast<size_t>(slot)]};
  }

  /// Pulls `bucket`'s fingerprint row and counter row toward the cache
  /// (used by the batched insert window ahead of the actual probe).
  void PrefetchBucket(uint32_t bucket) const {
    const size_t base = SlotBase(bucket);
    Prefetch(fps_.data() + base);
    Prefetch(qweights_.data() + base);
  }

  /// Interleaved snapshot of all slots (for inspection in tests and stats).
  std::vector<Entry> slots() const {
    std::vector<Entry> out(num_slots_);
    for (size_t i = 0; i < num_slots_; ++i) {
      out[i] = Entry{fps_[i], qweights_[i]};
    }
    return out;
  }

  /// Fraction of slots currently occupied.
  double Occupancy() const {
    size_t used = 0;
    for (size_t i = 0; i < num_slots_; ++i) used += fps_[i] == 0 ? 0 : 1;
    return num_slots_ == 0 ? 0.0
                           : static_cast<double>(used) /
                                 static_cast<double>(num_slots_);
  }

  void Clear() {
    fps_.assign(fps_.size(), 0u);
    qweights_.assign(qweights_.size(), 0);
  }

  /// True iff `other` was built with identical structure and hashing, so
  /// entries are positionally and fingerprint-compatible.
  bool Compatible(const CandidatePart& other) const {
    return num_buckets_ == other.num_buckets_ &&
           bucket_entries_ == other.bucket_entries_ &&
           fingerprint_bits_ == other.fingerprint_bits_ &&
           seed_ == other.seed_;
  }

  /// Checkpointing of the slot array. The payload is the interleaved Entry
  /// layout (layout-independent of the in-memory SoA form), prefixed by
  /// the key->bucket mapping scheme under which the slots were populated:
  /// a slot's bucket index is derived from the key hash, so state written
  /// under a different BucketOf reduction would leave every resident entry
  /// unreachable (and its VagueKey mass misaddressed) after load. ReadFrom
  /// rejects such streams instead of restoring them silently; migration is
  /// impossible because only fingerprints, not keys, are stored.
  void AppendTo(std::vector<uint8_t>* out) const {
    AppendPod(kKeyMappingScheme, out);
    AppendPod(static_cast<uint64_t>(num_buckets_), out);
    AppendPod(static_cast<uint32_t>(bucket_entries_), out);
    AppendVector(slots(), out);
  }
  bool ReadFrom(ByteReader* reader) {
    uint32_t scheme = 0;
    uint64_t buckets = 0;
    uint32_t entries = 0;
    std::vector<Entry> slots;
    if (!reader->Read(&scheme) || !reader->Read(&buckets) ||
        !reader->Read(&entries) || !reader->ReadVector(&slots)) {
      return false;
    }
    if (scheme != kKeyMappingScheme || buckets != num_buckets_ ||
        static_cast<int>(entries) != bucket_entries_ ||
        slots.size() != num_slots_) {
      return false;
    }
    for (size_t i = 0; i < num_slots_; ++i) {
      fps_[i] = slots[i].fingerprint;
      qweights_[i] = slots[i].qweight;
    }
    return true;
  }

 private:
  int bucket_entries_;
  int fingerprint_bits_;
  uint64_t seed_;
  size_t num_buckets_;
  uint32_t fp_mask_;
  size_t num_slots_;
  // Parallel slot arrays; fps_ carries kFindU32Pad zeroed lanes of overread
  // padding for the vectorized probe.
  std::vector<uint32_t> fps_;
  std::vector<int32_t> qweights_;
};

}  // namespace qf

#endif  // QUANTILEFILTER_CORE_CANDIDATE_PART_H_
